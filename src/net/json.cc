#include "net/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/logging.h"
#include "service/filter_parse.h"

namespace sitfact {
namespace net {

namespace {

/// Finite doubles render through %.17g — enough digits that strtod gives
/// back the exact bit pattern, and a pure function of the value so every
/// serializer call emits the same bytes.
std::string FormatDouble(double d) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

/// Doubles that may be non-finite: JSON has no NaN/Infinity tokens, so the
/// DTO layer spells them as strings and accepts both spellings back.
JsonValue DoubleToJson(double d) {
  if (std::isfinite(d)) return JsonValue::Number(d);
  if (std::isnan(d)) return JsonValue::Str("NaN");
  return JsonValue::Str(d > 0 ? "Infinity" : "-Infinity");
}

StatusOr<double> DoubleFromJson(const JsonValue& v, const char* field) {
  if (v.type() == JsonValue::Type::kNumber) return v.NumberAsDouble();
  if (v.type() == JsonValue::Type::kString) {
    const std::string& s = v.string_value();
    if (s == "NaN") return std::numeric_limits<double>::quiet_NaN();
    if (s == "Infinity") return std::numeric_limits<double>::infinity();
    if (s == "-Infinity") return -std::numeric_limits<double>::infinity();
  }
  return Status::InvalidArgument(std::string("field '") + field +
                                 "' is not a number");
}

StatusOr<uint64_t> U64FromJson(const JsonValue& v, const char* field) {
  if (v.type() != JsonValue::Type::kNumber) {
    return Status::InvalidArgument(std::string("field '") + field +
                                   "' is not an unsigned integer");
  }
  auto u = v.NumberAsU64();
  if (!u.ok()) {
    return Status::InvalidArgument(std::string("field '") + field + "': " +
                                   u.status().message());
  }
  return u.value();
}

StatusOr<uint32_t> U32FromJson(const JsonValue& v, const char* field) {
  auto u = U64FromJson(v, field);
  if (!u.ok()) return u.status();
  if (u.value() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(std::string("field '") + field +
                                   "' exceeds 32 bits");
  }
  return static_cast<uint32_t>(u.value());
}

StatusOr<bool> BoolFromJson(const JsonValue& v, const char* field) {
  if (v.type() != JsonValue::Type::kBool) {
    return Status::InvalidArgument(std::string("field '") + field +
                                   "' is not a boolean");
  }
  return v.bool_value();
}

StatusOr<std::string> StringFromJson(const JsonValue& v, const char* field) {
  if (v.type() != JsonValue::Type::kString) {
    return Status::InvalidArgument(std::string("field '") + field +
                                   "' is not a string");
  }
  return v.string_value();
}

void EscapeInto(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// --- parser ---

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    auto v = ParseValue(0);
    if (!v.ok()) return v.status();
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    // depth counts enclosing containers (0 at the top level), so a value
    // at depth kMaxDepth would be nested kMaxDepth+1 containers deep.
    if (depth >= JsonValue::kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) return s.status();
      return JsonValue::Str(std::move(s).value());
    }
    if (ConsumeWord("true")) return JsonValue::Bool(true);
    if (ConsumeWord("false")) return JsonValue::Bool(false);
    if (ConsumeWord("null")) return JsonValue::Null();
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    JsonValue obj = JsonValue::Object();
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key string");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      if (obj.Find(key.value()) != nullptr) {
        return Err("duplicate object key '" + key.value() + "'");
      }
      SkipWs();
      if (!Consume(':')) return Err("expected ':' after object key");
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      obj.Set(std::move(key).value(), std::move(value).value());
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Err("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    JsonValue arr = JsonValue::Array();
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      auto value = ParseValue(depth + 1);
      if (!value.ok()) return value.status();
      arr.Append(std::move(value).value());
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Err("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Err("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Err("bad \\u escape");
            }
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our serializer; decode them pairwise if present).
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 6 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Err("unpaired surrogate in \\u escape");
            }
            pos_ += 2;
            unsigned low = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              low <<= 4;
              if (h >= '0' && h <= '9') {
                low |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                low |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                low |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape");
              }
            }
            pos_ += 4;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Err("unpaired surrogate in \\u escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Err("unpaired surrogate in \\u escape");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Err("bad escape character");
      }
    }
    return Err("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Err("expected a JSON value");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Err("digits must follow '.'");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Err("digits must follow exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
      }
    }
    JsonValue v = JsonValue::Number(0.0);
    // Replace the canonical lexeme with exactly what was written, so exact
    // integers survive (NumberAsU64 parses the lexeme, not a double).
    v = JsonValue::RawNumber(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::Number(double d) {
  SITFACT_CHECK_MSG(std::isfinite(d),
                    "JsonValue::Number needs a finite double");
  JsonValue v;
  v.type_ = Type::kNumber;
  v.string_ = FormatDouble(d);
  return v;
}

JsonValue JsonValue::Number(uint64_t u) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.string_ = std::to_string(u);
  return v;
}

JsonValue JsonValue::Number(int64_t i) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.string_ = std::to_string(i);
  return v;
}

JsonValue JsonValue::RawNumber(std::string lexeme) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.string_ = std::move(lexeme);
  return v;
}

double JsonValue::NumberAsDouble() const {
  return std::strtod(string_.c_str(), nullptr);
}

StatusOr<uint64_t> JsonValue::NumberAsU64() const {
  const std::string& s = string_;
  if (s.empty() || s[0] == '-') {
    return Status::InvalidArgument("negative where unsigned expected");
  }
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("not an integer: " + s);
    }
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno == ERANGE || end != s.c_str() + s.size()) {
    return Status::InvalidArgument("integer out of range: " + s);
  }
  return static_cast<uint64_t>(v);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return &items_[i];
  }
  return nullptr;
}

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

void JsonValue::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += string_;
      return;
    case Type::kString:
      *out += '"';
      EscapeInto(string_, out);
      *out += '"';
      return;
    case Type::kArray:
      *out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) *out += ',';
        items_[i].DumpTo(out);
      }
      *out += ']';
      return;
    case Type::kObject:
      *out += '{';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) *out += ',';
        *out += '"';
        EscapeInto(keys_[i], out);
        *out += "\":";
        items_[i].DumpTo(out);
      }
      *out += '}';
      return;
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

// --- DTO (de)serialization ---

namespace {

JsonValue ConstraintToJson(const Constraint& c) {
  JsonValue obj = JsonValue::Object();
  obj.Set("num_dims", JsonValue::Number(static_cast<uint64_t>(c.num_dims())));
  obj.Set("bound", JsonValue::Number(static_cast<uint64_t>(c.bound_mask())));
  JsonValue values = JsonValue::Array();
  for (int d = 0; d < c.num_dims(); ++d) {
    if (c.IsBound(d)) {
      values.Append(JsonValue::Number(static_cast<uint64_t>(c.value(d))));
    }
  }
  obj.Set("values", std::move(values));
  return obj;
}

StatusOr<Constraint> ConstraintFromJson(const JsonValue& v,
                                        const char* field) {
  if (v.type() != JsonValue::Type::kObject) {
    return Status::InvalidArgument(std::string("field '") + field +
                                   "' is not a constraint object");
  }
  int num_dims = 0;
  DimMask bound = 0;
  std::vector<ValueId> values;
  for (const std::string& key : v.keys()) {
    const JsonValue& member = *v.Find(key);
    if (key == "num_dims") {
      auto u = U32FromJson(member, "num_dims");
      if (!u.ok()) return u.status();
      if (u.value() > static_cast<uint32_t>(kMaxDimensions)) {
        return Status::InvalidArgument("constraint num_dims exceeds " +
                                       std::to_string(kMaxDimensions));
      }
      num_dims = static_cast<int>(u.value());
    } else if (key == "bound") {
      auto u = U32FromJson(member, "bound");
      if (!u.ok()) return u.status();
      bound = u.value();
    } else if (key == "values") {
      if (member.type() != JsonValue::Type::kArray) {
        return Status::InvalidArgument("constraint 'values' is not an array");
      }
      for (size_t i = 0; i < member.size(); ++i) {
        auto u = U32FromJson(member.at(i), "values");
        if (!u.ok()) return u.status();
        values.push_back(u.value());
      }
    } else {
      return Status::InvalidArgument("unknown constraint field '" + key +
                                     "'");
    }
  }
  if (num_dims <= 0) {
    return Status::InvalidArgument("constraint needs positive num_dims");
  }
  if ((bound >> num_dims) != 0) {
    return Status::InvalidArgument(
        "constraint bound mask exceeds num_dims");
  }
  int popcount = 0;
  for (DimMask m = bound; m != 0; m &= m - 1) ++popcount;
  if (static_cast<size_t>(popcount) != values.size()) {
    return Status::InvalidArgument(
        "constraint 'values' length does not match the bound mask");
  }
  return Constraint::FromBoundValues(num_dims, bound, values);
}

JsonValue CursorToJson(const TopKCursor& cursor, bool with_token) {
  JsonValue obj = JsonValue::Object();
  obj.Set("prominence", DoubleToJson(cursor.prominence));
  obj.Set("record", JsonValue::Number(static_cast<uint64_t>(
                        cursor.record_id)));
  if (with_token) {
    obj.Set("token", JsonValue::Str(EncodeCursorToken(cursor)));
  }
  return obj;
}

StatusOr<TopKCursor> CursorFromJson(const JsonValue& v) {
  if (v.type() == JsonValue::Type::kString) {
    return ParseCursorToken(v.string_value());
  }
  if (v.type() != JsonValue::Type::kObject) {
    return Status::InvalidArgument(
        "field 'cursor' is not a cursor object or token");
  }
  TopKCursor cursor;
  for (const std::string& key : v.keys()) {
    const JsonValue& member = *v.Find(key);
    if (key == "prominence") {
      auto d = DoubleFromJson(member, "prominence");
      if (!d.ok()) return d.status();
      cursor.prominence = d.value();
    } else if (key == "record") {
      auto u = U32FromJson(member, "record");
      if (!u.ok()) return u.status();
      cursor.record_id = u.value();
    } else if (key == "token") {
      // Tolerated on input so a client can echo a response's `next` object
      // back verbatim; the structured fields win.
    } else {
      return Status::InvalidArgument("unknown cursor field '" + key + "'");
    }
  }
  return cursor;
}

JsonValue FilterToJson(const FactFilter& filter) {
  JsonValue obj = JsonValue::Object();
  if (filter.tuple.has_value()) {
    obj.Set("tuple", JsonValue::Number(static_cast<uint64_t>(*filter.tuple)));
  }
  if (filter.bound_mask.has_value()) {
    obj.Set("bound_mask",
            JsonValue::Number(static_cast<uint64_t>(*filter.bound_mask)));
  }
  if (filter.subspace.has_value()) {
    obj.Set("subspace",
            JsonValue::Number(static_cast<uint64_t>(*filter.subspace)));
  }
  if (filter.about.has_value()) {
    obj.Set("about", ConstraintToJson(*filter.about));
  }
  obj.Set("min_arrival", JsonValue::Number(filter.min_arrival));
  obj.Set("max_arrival", JsonValue::Number(filter.max_arrival));
  obj.Set("min_prominence", DoubleToJson(filter.min_prominence));
  obj.Set("prominent_only", JsonValue::Bool(filter.prominent_only));
  obj.Set("include_dead", JsonValue::Bool(filter.include_dead));
  return obj;
}

StatusOr<FactFilter> FilterFromJson(const JsonValue& v,
                                    const Relation* relation,
                                    std::string* empty_note) {
  if (v.type() != JsonValue::Type::kObject) {
    return Status::InvalidArgument("field 'filter' is not an object");
  }
  FactFilter filter;
  FactFilterSpec spec;
  bool has_structured_window = false;
  for (const std::string& key : v.keys()) {
    const JsonValue& member = *v.Find(key);
    if (key == "tuple") {
      auto u = U32FromJson(member, "tuple");
      if (!u.ok()) return u.status();
      filter.tuple = u.value();
    } else if (key == "bound_mask") {
      auto u = U32FromJson(member, "bound_mask");
      if (!u.ok()) return u.status();
      filter.bound_mask = u.value();
    } else if (key == "subspace") {
      auto u = U32FromJson(member, "subspace");
      if (!u.ok()) return u.status();
      filter.subspace = u.value();
    } else if (key == "about") {
      auto c = ConstraintFromJson(member, "about");
      if (!c.ok()) return c.status();
      filter.about = std::move(c).value();
    } else if (key == "min_arrival") {
      auto u = U64FromJson(member, "min_arrival");
      if (!u.ok()) return u.status();
      filter.min_arrival = u.value();
      has_structured_window = true;
    } else if (key == "max_arrival") {
      auto u = U64FromJson(member, "max_arrival");
      if (!u.ok()) return u.status();
      filter.max_arrival = u.value();
      has_structured_window = true;
    } else if (key == "min_prominence") {
      auto d = DoubleFromJson(member, "min_prominence");
      if (!d.ok()) return d.status();
      filter.min_prominence = d.value();
    } else if (key == "prominent_only") {
      auto b = BoolFromJson(member, "prominent_only");
      if (!b.ok()) return b.status();
      filter.prominent_only = b.value();
    } else if (key == "include_dead") {
      auto b = BoolFromJson(member, "include_dead");
      if (!b.ok()) return b.status();
      filter.include_dead = b.value();
    } else if (key == "where" || key == "measures" || key == "window") {
      auto s = StringFromJson(member, key.c_str());
      if (!s.ok()) return s.status();
      if (relation == nullptr) {
        return Status::InvalidArgument(
            "textual filter field '" + key +
            "' needs a served relation to resolve names against");
      }
      if (key == "where") {
        spec.where = std::move(s).value();
      } else if (key == "measures") {
        spec.subspace = std::move(s).value();
      } else {
        spec.window = std::move(s).value();
      }
    } else {
      return Status::InvalidArgument("unknown filter field '" + key + "'");
    }
  }
  // The textual grammar resolves through the exact parser the CLI uses;
  // mixing a textual field with its structured twin is ambiguous.
  if (!spec.where.empty() && filter.about.has_value()) {
    return Status::InvalidArgument("filter gives both 'where' and 'about'");
  }
  if (!spec.subspace.empty() && filter.subspace.has_value()) {
    return Status::InvalidArgument(
        "filter gives both 'measures' and 'subspace'");
  }
  if (!spec.window.empty() && has_structured_window) {
    return Status::InvalidArgument(
        "filter gives both 'window' and 'min_arrival'/'max_arrival'");
  }
  if (!spec.where.empty() || !spec.subspace.empty() || !spec.window.empty()) {
    auto parsed = ParseFactFilter(spec, *relation, empty_note);
    if (!parsed.ok()) return parsed.status();
    if (parsed.value().about.has_value()) filter.about = parsed.value().about;
    if (parsed.value().subspace.has_value()) {
      filter.subspace = parsed.value().subspace;
    }
    if (!spec.window.empty()) {
      filter.min_arrival = parsed.value().min_arrival;
      filter.max_arrival = parsed.value().max_arrival;
    }
  }
  return filter;
}

JsonValue FactViewToJson(const FactService::FactView& view) {
  JsonValue obj = JsonValue::Object();
  obj.Set("id", JsonValue::Number(static_cast<uint64_t>(view.id)));
  obj.Set("tuple", JsonValue::Number(static_cast<uint64_t>(view.tuple)));
  obj.Set("arrival_seq", JsonValue::Number(view.arrival_seq));
  obj.Set("constraint", ConstraintToJson(view.fact.constraint));
  obj.Set("subspace",
          JsonValue::Number(static_cast<uint64_t>(view.fact.subspace)));
  obj.Set("context_size", JsonValue::Number(view.context_size));
  obj.Set("skyline_size", JsonValue::Number(view.skyline_size));
  obj.Set("prominence", DoubleToJson(view.prominence));
  obj.Set("prominent", JsonValue::Bool(view.prominent));
  obj.Set("ranked", JsonValue::Bool(view.ranked));
  obj.Set("live", JsonValue::Bool(view.live));
  obj.Set("narration", JsonValue::Str(view.narration));
  return obj;
}

StatusOr<FactService::FactView> FactViewFromJson(const JsonValue& v) {
  if (v.type() != JsonValue::Type::kObject) {
    return Status::InvalidArgument("fact entry is not an object");
  }
  FactService::FactView view;
  for (const std::string& key : v.keys()) {
    const JsonValue& member = *v.Find(key);
    if (key == "id") {
      auto u = U32FromJson(member, "id");
      if (!u.ok()) return u.status();
      view.id = u.value();
    } else if (key == "tuple") {
      auto u = U32FromJson(member, "tuple");
      if (!u.ok()) return u.status();
      view.tuple = u.value();
    } else if (key == "arrival_seq") {
      auto u = U64FromJson(member, "arrival_seq");
      if (!u.ok()) return u.status();
      view.arrival_seq = u.value();
    } else if (key == "constraint") {
      auto c = ConstraintFromJson(member, "constraint");
      if (!c.ok()) return c.status();
      view.fact.constraint = std::move(c).value();
    } else if (key == "subspace") {
      auto u = U32FromJson(member, "subspace");
      if (!u.ok()) return u.status();
      view.fact.subspace = u.value();
    } else if (key == "context_size") {
      auto u = U64FromJson(member, "context_size");
      if (!u.ok()) return u.status();
      view.context_size = u.value();
    } else if (key == "skyline_size") {
      auto u = U64FromJson(member, "skyline_size");
      if (!u.ok()) return u.status();
      view.skyline_size = u.value();
    } else if (key == "prominence") {
      auto d = DoubleFromJson(member, "prominence");
      if (!d.ok()) return d.status();
      view.prominence = d.value();
    } else if (key == "prominent") {
      auto b = BoolFromJson(member, "prominent");
      if (!b.ok()) return b.status();
      view.prominent = b.value();
    } else if (key == "ranked") {
      auto b = BoolFromJson(member, "ranked");
      if (!b.ok()) return b.status();
      view.ranked = b.value();
    } else if (key == "live") {
      auto b = BoolFromJson(member, "live");
      if (!b.ok()) return b.status();
      view.live = b.value();
    } else if (key == "narration") {
      auto s = StringFromJson(member, "narration");
      if (!s.ok()) return s.status();
      view.narration = std::move(s).value();
    } else {
      return Status::InvalidArgument("unknown fact field '" + key + "'");
    }
  }
  return view;
}

std::string WireErrorCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kIoError:
      return "io_error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kUnimplemented:
      return "unimplemented";
  }
  return "unknown";
}

}  // namespace

JsonValue RequestToJson(const QueryRequest& request) {
  JsonValue obj = JsonValue::Object();
  obj.Set("schema",
          JsonValue::Number(static_cast<uint64_t>(kWireSchemaVersion)));
  obj.Set("kind", JsonValue::Str(QueryKindName(request.kind)));
  obj.Set("k", JsonValue::Number(request.k));
  obj.Set("filter", FilterToJson(request.filter));
  if (request.tuple.has_value()) {
    obj.Set("tuple",
            JsonValue::Number(static_cast<uint64_t>(*request.tuple)));
  }
  if (request.window_first.has_value()) {
    obj.Set("window_first", JsonValue::Number(*request.window_first));
  }
  if (request.window_last.has_value()) {
    obj.Set("window_last", JsonValue::Number(*request.window_last));
  }
  if (request.cursor.has_value()) {
    obj.Set("cursor", CursorToJson(*request.cursor, /*with_token=*/false));
  }
  if (request.record.has_value()) {
    obj.Set("record",
            JsonValue::Number(static_cast<uint64_t>(*request.record)));
  }
  return obj;
}

std::string CanonicalRequestKey(const QueryRequest& request) {
  return RequestToJson(request).Dump();
}

StatusOr<QueryRequest> RequestFromJson(const JsonValue& json,
                                       const Relation* relation) {
  return RequestFromJson(json, relation, nullptr);
}

StatusOr<QueryRequest> RequestFromJson(const JsonValue& json,
                                       const Relation* relation,
                                       std::string* empty_note) {
  if (json.type() != JsonValue::Type::kObject) {
    return Status::InvalidArgument("request is not a JSON object");
  }
  QueryRequest request;
  std::string scratch_note;
  if (empty_note == nullptr) empty_note = &scratch_note;
  for (const std::string& key : json.keys()) {
    const JsonValue& member = *json.Find(key);
    if (key == "schema") {
      auto u = U64FromJson(member, "schema");
      if (!u.ok()) return u.status();
      if (u.value() != kWireSchemaVersion) {
        return Status::InvalidArgument(
            "unsupported schema version " + std::to_string(u.value()) +
            " (this server speaks " + std::to_string(kWireSchemaVersion) +
            ")");
      }
    } else if (key == "kind") {
      auto s = StringFromJson(member, "kind");
      if (!s.ok()) return s.status();
      auto kind = ParseQueryKind(s.value());
      if (!kind.ok()) return kind.status();
      request.kind = kind.value();
    } else if (key == "k") {
      auto u = U64FromJson(member, "k");
      if (!u.ok()) return u.status();
      request.k = u.value();
    } else if (key == "filter") {
      auto f = FilterFromJson(member, relation, empty_note);
      if (!f.ok()) return f.status();
      request.filter = std::move(f).value();
    } else if (key == "tuple") {
      auto u = U32FromJson(member, "tuple");
      if (!u.ok()) return u.status();
      request.tuple = u.value();
    } else if (key == "window_first") {
      auto u = U64FromJson(member, "window_first");
      if (!u.ok()) return u.status();
      request.window_first = u.value();
    } else if (key == "window_last") {
      auto u = U64FromJson(member, "window_last");
      if (!u.ok()) return u.status();
      request.window_last = u.value();
    } else if (key == "cursor") {
      auto c = CursorFromJson(member);
      if (!c.ok()) return c.status();
      request.cursor = c.value();
    } else if (key == "record") {
      auto u = U32FromJson(member, "record");
      if (!u.ok()) return u.status();
      request.record = u.value();
    } else {
      return Status::InvalidArgument("unknown request field '" + key + "'");
    }
  }
  return request;
}

StatusOr<QueryRequest> ParseRequest(std::string_view text,
                                    const Relation* relation) {
  auto json = JsonValue::Parse(text);
  if (!json.ok()) return json.status();
  return RequestFromJson(json.value(), relation);
}

JsonValue ResponseToJson(const QueryResponse& response) {
  JsonValue obj = JsonValue::Object();
  obj.Set("schema", JsonValue::Number(static_cast<uint64_t>(response.schema)));
  obj.Set("epoch", JsonValue::Number(response.epoch));
  JsonValue facts = JsonValue::Array();
  for (const FactService::FactView& view : response.facts) {
    facts.Append(FactViewToJson(view));
  }
  obj.Set("facts", std::move(facts));
  if (response.next.has_value()) {
    obj.Set("next", CursorToJson(*response.next, /*with_token=*/true));
  }
  if (response.explanation.has_value()) {
    obj.Set("explanation", JsonValue::Str(*response.explanation));
  }
  return obj;
}

std::string SerializeResponse(const QueryResponse& response) {
  return ResponseToJson(response).Dump();
}

StatusOr<QueryResponse> ResponseFromJson(const JsonValue& json) {
  if (json.type() != JsonValue::Type::kObject) {
    return Status::InvalidArgument("response is not a JSON object");
  }
  QueryResponse response;
  for (const std::string& key : json.keys()) {
    const JsonValue& member = *json.Find(key);
    if (key == "schema") {
      auto u = U32FromJson(member, "schema");
      if (!u.ok()) return u.status();
      response.schema = u.value();
    } else if (key == "epoch") {
      auto u = U64FromJson(member, "epoch");
      if (!u.ok()) return u.status();
      response.epoch = u.value();
    } else if (key == "facts") {
      if (member.type() != JsonValue::Type::kArray) {
        return Status::InvalidArgument("response 'facts' is not an array");
      }
      for (size_t i = 0; i < member.size(); ++i) {
        auto view = FactViewFromJson(member.at(i));
        if (!view.ok()) return view.status();
        response.facts.push_back(std::move(view).value());
      }
    } else if (key == "next") {
      auto c = CursorFromJson(member);
      if (!c.ok()) return c.status();
      response.next = c.value();
    } else if (key == "explanation") {
      auto s = StringFromJson(member, "explanation");
      if (!s.ok()) return s.status();
      response.explanation = std::move(s).value();
    } else {
      return Status::InvalidArgument("unknown response field '" + key + "'");
    }
  }
  return response;
}

StatusOr<QueryResponse> ParseResponse(std::string_view text) {
  auto json = JsonValue::Parse(text);
  if (!json.ok()) return json.status();
  return ResponseFromJson(json.value());
}

std::string SerializeErrorBody(const Status& status) {
  JsonValue obj = JsonValue::Object();
  obj.Set("schema",
          JsonValue::Number(static_cast<uint64_t>(kWireSchemaVersion)));
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::Str(WireErrorCode(status.code())));
  error.Set("message", JsonValue::Str(status.message()));
  obj.Set("error", std::move(error));
  return obj.Dump();
}

std::string EncodeCursorToken(const TopKCursor& cursor) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a:%u", cursor.prominence,
                cursor.record_id);
  // %a writes exponents as p+N, and '+' in a query string decodes to a
  // space — strip it (strtod accepts a signless exponent) so the token
  // survives being pasted into a URL verbatim.
  std::string token = buf;
  const size_t plus = token.find('+');
  if (plus != std::string::npos) token.erase(plus, 1);
  return token;
}

StatusOr<TopKCursor> ParseCursorToken(const std::string& token) {
  const size_t colon = token.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= token.size()) {
    return Status::InvalidArgument("bad cursor token '" + token + "'");
  }
  const std::string prom = token.substr(0, colon);
  const std::string rec = token.substr(colon + 1);
  char* end = nullptr;
  const double p = std::strtod(prom.c_str(), &end);
  if (end != prom.c_str() + prom.size()) {
    return Status::InvalidArgument("bad cursor token '" + token + "'");
  }
  for (char c : rec) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad cursor token '" + token + "'");
    }
  }
  errno = 0;
  const unsigned long long r = std::strtoull(rec.c_str(), nullptr, 10);
  if (errno == ERANGE || r > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("bad cursor token '" + token + "'");
  }
  TopKCursor cursor;
  cursor.prominence = p;
  cursor.record_id = static_cast<uint32_t>(r);
  return cursor;
}

}  // namespace net
}  // namespace sitfact
