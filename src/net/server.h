#ifndef SITFACT_NET_SERVER_H_
#define SITFACT_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/http.h"

namespace sitfact {
namespace net {

/// Single-threaded epoll HTTP/1.1 server. One thread owns the listener,
/// every connection, and the handler — queries against FactService
/// snapshots are cheap and the index itself is single-writer, so the
/// serving plane multiplexes connections instead of spawning threads.
/// Concurrency = many in-flight connections, not many cores.
///
/// Admission control: at most `max_connections` connections are admitted;
/// beyond that, new arrivals are answered immediately with
/// `429 Too Many Requests` + `Retry-After` and closed (load is shed at the
/// door, never queued without bound). The kernel accept backlog is also
/// bounded by `listen_backlog`.
class EpollServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  ///< 0: kernel assigns; read back via port()
    int listen_backlog = 64;
    int max_connections = 64;
    int retry_after_seconds = 1;
    /// Keep-alive connections idle longer than this are closed, freeing
    /// their admission slot (otherwise max_connections dead keep-alive
    /// clients would shed every new arrival forever). Also reaps stalled
    /// writers that stop reading their response. <= 0 disables reaping.
    int idle_timeout_ms = 30000;
    HttpLimits limits;
  };

  /// Serving statistics, exported verbatim at /statz.
  struct Stats {
    uint64_t accepted = 0;        ///< connections admitted
    uint64_t shed = 0;            ///< connections answered 429 at the door
    uint64_t protocol_errors = 0; ///< requests failed in HTTP parsing
    uint64_t requests = 0;        ///< requests dispatched to the handler
    uint64_t idle_closed = 0;     ///< connections reaped by idle_timeout_ms
    int active_connections = 0;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit EpollServer(Options options);
  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Binds and listens. After this, port() is the bound port.
  Status Listen();
  uint16_t port() const { return port_; }

  /// Runs the event loop until RequestStop() (or the external stop flag)
  /// is observed. Pending responses are flushed before returning.
  Status Serve();

  /// Asks Serve() to wind down. Safe from the handler (same thread) and
  /// from signal context via the external stop flag.
  void RequestStop() { stop_requested_ = true; }

  /// Optional additional stop signal checked each loop iteration
  /// (lets a signal handler stop the server without touching this object).
  void set_external_stop(const std::atomic<bool>* flag) {
    external_stop_ = flag;
  }

  const Stats& stats() const { return stats_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;        ///< unconsumed request bytes
    std::string out;       ///< unsent response bytes
    size_t out_pos = 0;
    bool close_after_flush = false;
    bool want_write = false;  ///< currently registered for EPOLLOUT
    /// Last byte of progress in either direction; the idle sweep reaps
    /// connections whose clock falls idle_timeout_ms behind.
    std::chrono::steady_clock::time_point last_activity;
  };

  void AcceptNew();
  /// false: connection was closed and erased.
  bool OnReadable(Connection* conn);
  bool OnWritable(Connection* conn);
  /// Parses and dispatches every complete request in conn->in.
  bool DrainRequests(Connection* conn);
  bool FlushOut(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConnection(int fd);
  /// Closes every connection idle past options_.idle_timeout_ms (runs on
  /// each event-loop tick, which epoll_wait bounds at ~100ms).
  void ReapIdleConnections();

  Options options_;
  Handler handler_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  uint16_t port_ = 0;
  bool stop_requested_ = false;
  const std::atomic<bool>* external_stop_ = nullptr;
  std::map<int, std::unique_ptr<Connection>> connections_;
  Stats stats_;
};

}  // namespace net
}  // namespace sitfact

#endif  // SITFACT_NET_SERVER_H_
