#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

namespace sitfact {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

EpollServer::EpollServer(Options options) : options_(std::move(options)) {}

EpollServer::~EpollServer() {
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EpollServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind " + options_.host + ":" +
                 std::to_string(options_.port));
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  return Status();
}

Status EpollServer::Serve() {
  if (listen_fd_ < 0 || epoll_fd_ < 0) {
    return Status::InvalidArgument("Serve() before Listen()");
  }
  epoll_event events[64];
  while (!stop_requested_ &&
         !(external_stop_ != nullptr &&
           external_stop_->load(std::memory_order_relaxed))) {
    const int n = ::epoll_wait(epoll_fd_, events, 64, /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(fd);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) {
        if (!OnReadable(conn)) continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        OnWritable(conn);
      }
    }
    ReapIdleConnections();
  }
  // Flush any buffered responses (briefly, blocking) before closing.
  for (auto& [fd, conn] : connections_) {
    if (conn->out_pos < conn->out.size()) {
      const int flags = fcntl(fd, F_GETFL, 0);
      fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
      const std::string_view rest =
          std::string_view(conn->out).substr(conn->out_pos);
      (void)!::write(fd, rest.data(), rest.size());
    }
    ::close(fd);
  }
  connections_.clear();
  return Status();
}

void EpollServer::AcceptNew() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) {
      return;  // EAGAIN or transient error; epoll will call again
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Shed at the door: a bounded, immediate 429 instead of an unbounded
      // queue. The write is best-effort — the socket buffer of a fresh
      // connection always has room for one small response.
      ++stats_.shed;
      HttpResponse shed;
      shed.status = 429;
      shed.body =
          "{\"schema\":1,\"error\":{\"code\":\"overloaded\",\"message\":"
          "\"connection limit reached, retry later\"}}";
      shed.extra_headers.emplace_back(
          "Retry-After", std::to_string(options_.retry_after_seconds));
      shed.close = true;
      const std::string wire = SerializeHttpResponse(shed);
      (void)!::write(fd, wire.data(), wire.size());
      ::close(fd);
      continue;
    }
    ++stats_.accepted;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    connections_[fd] = std::move(conn);
    stats_.active_connections = static_cast<int>(connections_.size());
  }
}

bool EpollServer::OnReadable(Connection* conn) {
  char buf[8192];
  while (true) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->last_activity = std::chrono::steady_clock::now();
      conn->in.append(buf, static_cast<size_t>(n));
      // Oversized pipelined garbage with no complete request: bound input.
      if (conn->in.size() >
          options_.limits.max_header_bytes + options_.limits.max_body_bytes +
              4096) {
        break;
      }
      continue;
    }
    if (n == 0) {
      // Peer closed its write side. Serve what was already buffered, flush
      // the response if one is still in flight, then drop the connection.
      if (!DrainRequests(conn)) return false;
      if (conn->out_pos >= conn->out.size()) {
        CloseConnection(conn->fd);
        return false;
      }
      conn->close_after_flush = true;
      return true;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(conn->fd);
    return false;
  }
  return DrainRequests(conn);
}

bool EpollServer::DrainRequests(Connection* conn) {
  while (!conn->close_after_flush) {
    HttpRequest request;
    const ParseResult parsed =
        ParseHttpRequest(conn->in, options_.limits, &request);
    if (parsed.state == ParseResult::State::kNeedMore) break;
    if (parsed.state == ParseResult::State::kBad) {
      ++stats_.protocol_errors;
      HttpResponse response;
      response.status = parsed.http_status;
      response.body =
          "{\"schema\":1,\"error\":{\"code\":\"bad_request\",\"message\":\"" +
          parsed.error + "\"}}";
      response.close = true;
      conn->out += SerializeHttpResponse(response);
      conn->close_after_flush = true;
      break;
    }
    conn->in.erase(0, parsed.consumed);
    ++stats_.requests;
    HttpResponse response =
        handler_ ? handler_(request)
                 : HttpResponse{500, "application/json",
                                "{\"schema\":1,\"error\":{\"code\":"
                                "\"unimplemented\",\"message\":\"no "
                                "handler\"}}",
                                {},
                                true};
    if (!request.keep_alive) response.close = true;
    if (response.close) conn->close_after_flush = true;
    conn->out += SerializeHttpResponse(response);
  }
  return FlushOut(conn);
}

bool EpollServer::OnWritable(Connection* conn) { return FlushOut(conn); }

bool EpollServer::FlushOut(Connection* conn) {
  while (conn->out_pos < conn->out.size()) {
    const ssize_t n = ::write(conn->fd, conn->out.data() + conn->out_pos,
                              conn->out.size() - conn->out_pos);
    if (n > 0) {
      conn->last_activity = std::chrono::steady_clock::now();
      conn->out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateInterest(conn);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->fd);
    return false;
  }
  conn->out.clear();
  conn->out_pos = 0;
  if (conn->close_after_flush) {
    CloseConnection(conn->fd);
    return false;
  }
  UpdateInterest(conn);
  return true;
}

void EpollServer::UpdateInterest(Connection* conn) {
  const bool want_write = conn->out_pos < conn->out.size();
  if (want_write == conn->want_write) return;
  conn->want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void EpollServer::ReapIdleConnections() {
  if (options_.idle_timeout_ms <= 0 || connections_.empty()) return;
  const auto deadline = std::chrono::steady_clock::now() -
                        std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    if (conn->last_activity < deadline) idle.push_back(fd);
  }
  for (int fd : idle) {
    ++stats_.idle_closed;
    CloseConnection(fd);
  }
}

void EpollServer::CloseConnection(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(fd);
  stats_.active_connections = static_cast<int>(connections_.size());
}

}  // namespace net
}  // namespace sitfact
