#ifndef SITFACT_NET_HTTP_H_
#define SITFACT_NET_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sitfact {
namespace net {

/// HTTP/1.1, the subset the serving plane speaks: requests with bounded
/// headers and bounded Content-Length bodies (chunked transfer encoding is
/// rejected — every body is length-delimited so the parser never needs
/// unbounded buffering), keep-alive by default, close on request.

/// Size limits enforced while parsing; exceeding one fails the request
/// with the status code in ParseResult::http_status.
struct HttpLimits {
  size_t max_header_bytes = 8192;
  size_t max_body_bytes = 1 << 16;
};

struct HttpRequest {
  std::string method;  ///< uppercase, e.g. "GET"
  std::string target;  ///< raw request target, e.g. "/topk?k=5"
  std::string path;    ///< percent-decoded path, e.g. "/topk"
  /// Percent-decoded query parameters, in request order.
  std::vector<std::pair<std::string, std::string>> query;
  /// Header fields; names lowercased, values trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  /// First matching header value (name given lowercase); nullptr if absent.
  const std::string* Header(std::string_view name) const;
  /// First matching query parameter; nullptr if absent.
  const std::string* Query(std::string_view name) const;
};

/// Outcome of attempting to parse one request from the front of a buffer.
struct ParseResult {
  enum class State {
    kNeedMore,  ///< incomplete — read more bytes and retry
    kComplete,  ///< `request` filled, `consumed` bytes eaten
    kBad,       ///< protocol error — answer http_status and close
  };
  State state = State::kNeedMore;
  size_t consumed = 0;
  int http_status = 0;  ///< kBad: 400/413/431/501
  std::string error;    ///< kBad: human-readable reason
};

/// Tries to parse one complete request at the start of `buffer`.
/// Stateless — callers keep the unconsumed tail and call again.
ParseResult ParseHttpRequest(std::string_view buffer,
                             const HttpLimits& limits, HttpRequest* request);

/// A response about to be serialized. Content-Length, Connection and the
/// status line are emitted by SerializeResponse.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra headers (e.g. Retry-After), name/value verbatim.
  std::vector<std::pair<std::string, std::string>> extra_headers;
  bool close = false;  ///< force Connection: close
};

std::string SerializeHttpResponse(const HttpResponse& response);

/// Reason phrase for the handful of statuses the server emits.
const char* HttpStatusReason(int status);

/// Percent-decodes %XX escapes; '+' becomes a space (query convention).
std::string PercentDecode(std::string_view s);

/// Splits "a=1&b=x%20y" into decoded pairs, preserving order.
std::vector<std::pair<std::string, std::string>> ParseQueryString(
    std::string_view s);

}  // namespace net
}  // namespace sitfact

#endif  // SITFACT_NET_HTTP_H_
