#ifndef SITFACT_NET_JSON_H_
#define SITFACT_NET_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "query/fact_index.h"
#include "relation/relation.h"
#include "service/query_api.h"

namespace sitfact {
namespace net {

/// Minimal JSON document model, grown for one job: THE (de)serializer for
/// the unified QueryRequest/QueryResponse wire shapes, shared by the HTTP
/// server, the CLI's `--format json`, the load generator, and the tests.
///
/// Two properties the standard library shapes would not give us:
///  * Deterministic output — objects keep insertion order and Dump() is a
///    pure function of the value, so the same response serializes to the
///    same bytes (the per-epoch response cache and the byte-identical
///    server-vs-in-process differential tests both rest on this).
///  * Exact 64-bit integers — numbers remember their lexeme, so a uint64
///    survives the round trip bit-for-bit instead of sagging through a
///    double at 2^53.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  /// Finite doubles only (shortest round-trip formatting); the DTO layer
  /// encodes NaN/Infinity as strings because JSON has no tokens for them.
  static JsonValue Number(double d);
  static JsonValue Number(uint64_t u);
  static JsonValue Number(int64_t i);
  static JsonValue Number(uint32_t u) {
    return Number(static_cast<uint64_t>(u));
  }
  static JsonValue Number(int i) { return Number(static_cast<int64_t>(i)); }
  /// A number from its exact lexeme (no validation; the parser's path for
  /// keeping integers bit-exact).
  static JsonValue RawNumber(std::string lexeme);
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  /// Parses one JSON document (trailing garbage rejected). Duplicate
  /// object keys are rejected — a canonical cache key must name each field
  /// once. Nesting deeper than kMaxDepth is rejected.
  static StatusOr<JsonValue> Parse(std::string_view text);
  static constexpr int kMaxDepth = 32;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool bool_value() const { return bool_; }
  const std::string& string_value() const { return string_; }
  /// The number's lexeme as written/parsed.
  const std::string& number_lexeme() const { return string_; }
  double NumberAsDouble() const;
  /// Exact unsigned integer; InvalidArgument when the lexeme is negative,
  /// fractional, or exceeds uint64.
  StatusOr<uint64_t> NumberAsU64() const;

  // --- array ---
  void Append(JsonValue v) { items_.push_back(std::move(v)); }
  size_t size() const { return items_.size(); }
  const JsonValue& at(size_t i) const { return items_[i]; }

  // --- object (insertion-ordered) ---
  void Set(std::string key, JsonValue v) {
    keys_.push_back(std::move(key));
    items_.push_back(std::move(v));
  }
  /// Member lookup; nullptr when absent.
  const JsonValue* Find(std::string_view key) const;
  const std::vector<std::string>& keys() const { return keys_; }

  /// Compact deterministic rendering (no whitespace, insertion order).
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  std::string string_;  ///< string value or number lexeme
  std::vector<JsonValue> items_;
  std::vector<std::string> keys_;  ///< parallel to items_ for objects
};

// --- the one QueryRequest/QueryResponse (de)serializer ---

/// Canonical structured form of a request. Pure function of the struct:
/// two equal requests serialize to the same bytes, which is what makes
/// Dump(RequestToJson(r)) usable as the response-cache key.
JsonValue RequestToJson(const QueryRequest& request);

/// The per-epoch cache key: the canonical serialized request.
std::string CanonicalRequestKey(const QueryRequest& request);

/// Decodes a request. Structured fields round-trip RequestToJson exactly.
/// When `relation` is non-null the filter additionally accepts the textual
/// grammar shared with the CLI (`where`, `measures`, `window` — see
/// src/service/filter_parse.h); with a null relation those fields are
/// rejected (no dictionaries to resolve names against). Unknown fields are
/// rejected by name at every nesting level.
StatusOr<QueryRequest> RequestFromJson(const JsonValue& json,
                                       const Relation* relation);
/// Like above but surfaces the provably-empty-context note from a `where`
/// value that never occurs (see ParseWhereConstraint): the caller should
/// answer with an empty page, not execute the unconstrained query.
StatusOr<QueryRequest> RequestFromJson(const JsonValue& json,
                                       const Relation* relation,
                                       std::string* empty_note);
StatusOr<QueryRequest> ParseRequest(std::string_view text,
                                    const Relation* relation);

JsonValue ResponseToJson(const QueryResponse& response);
std::string SerializeResponse(const QueryResponse& response);
StatusOr<QueryResponse> ResponseFromJson(const JsonValue& json);
StatusOr<QueryResponse> ParseResponse(std::string_view text);

/// `{"schema":1,"error":{"code":"invalid_argument","message":...}}` — the
/// structured error body every non-2xx endpoint response carries.
std::string SerializeErrorBody(const Status& status);

/// Opaque pagination token carried beside the structured cursor in
/// responses ("next.token") and accepted as the `cursor` query parameter:
/// `<prominence-hexfloat>:<record-id>`. Hexfloat keeps the double exact
/// (NaN included, as "nan").
std::string EncodeCursorToken(const TopKCursor& cursor);
StatusOr<TopKCursor> ParseCursorToken(const std::string& token);

}  // namespace net
}  // namespace sitfact

#endif  // SITFACT_NET_JSON_H_
