#ifndef SITFACT_PERSIST_WAL_H_
#define SITFACT_PERSIST_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "relation/relation.h"

namespace sitfact {
namespace persist {

/// Write-ahead log for the arrivals between two checkpoints.
///
/// A durable deployment cannot afford a full snapshot per arrival, so every
/// engine mutation (Append / Remove / Update) is first framed into the WAL
/// and only then applied. Recovery loads the newest valid snapshot and
/// replays the WAL tail; anything after the last intact record — a torn
/// write from a crash mid-fwrite, a bit flip, a truncated download — is
/// dropped, never decoded into garbage ops (docs/persistence.md).
///
/// File layout (little-endian):
///   "SFWALv1\0"  magic, 8 bytes
///   u32          format version (1)
///   u64          start_seq — sequence number of the first op this log holds
///   u32          CRC-32 of the 12 header bytes above
///   record*      each: u32 payload_len | u32 payload_crc | payload
/// Record payload: u8 kind | u64 seq | body. Body is the row (Append), the
/// target TupleId (Remove), or target + row (Update).
///
/// Sequence numbers count every logged op since the store's genesis, so a
/// record's seq doubles as its global op index; readers use them to skip
/// ops already covered by a snapshot and to detect gaps between log files.

enum class WalOpKind : uint8_t {
  kAppend = 1,
  kRemove = 2,
  kUpdate = 3,
};

/// One logged engine mutation.
struct WalOp {
  WalOpKind kind = WalOpKind::kAppend;
  uint64_t seq = 0;
  TupleId target = 0;  // kRemove / kUpdate
  Row row;             // kAppend / kUpdate
};

/// Appends framed records to a fresh log file. Every Append is flushed to
/// the OS (fflush) so a process kill loses at most the op being framed;
/// Sync() additionally forces the data to disk (fsync) for power-failure
/// durability.
class WalWriter {
 public:
  /// Creates (truncates) `path` and writes the header.
  static StatusOr<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                     uint64_t start_seq);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frames, writes and flushes one record.
  Status Append(const WalOp& op);

  /// fsync() the file.
  Status Sync();

  /// Flushes and closes; further Appends fail.
  Status Close();

  const std::string& path() const { return path_; }
  uint64_t start_seq() const { return start_seq_; }

 private:
  WalWriter(std::FILE* file, std::string path, uint64_t start_seq)
      : file_(file), path_(std::move(path)), start_seq_(start_seq) {}

  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t start_seq_ = 0;
};

/// A decoded log: the intact record prefix plus what (if anything) was
/// dropped from the tail.
struct WalContents {
  uint64_t start_seq = 0;
  std::vector<WalOp> ops;
  /// False when trailing bytes were dropped (torn write or corruption);
  /// `tail_note` says why. Replay must stop at the drop point — later
  /// records, even if intact, would build on ops that no longer exist.
  bool clean_tail = true;
  std::string tail_note;
};

/// Reads a log tolerantly: returns every record up to the first torn or
/// corrupt one. Fails outright (Corruption/IoError) only when the header
/// itself is unreadable — such a file holds no usable ops at all.
StatusOr<WalContents> ReadWal(const std::string& path);

}  // namespace persist
}  // namespace sitfact

#endif  // SITFACT_PERSIST_WAL_H_
