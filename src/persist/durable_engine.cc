#include "persist/durable_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "io/snapshot.h"

namespace sitfact {
namespace persist {

namespace fs = std::filesystem;

namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".sfsnap";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".sfwal";

std::string SeqName(const char* prefix, uint64_t seq, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", prefix,
                static_cast<unsigned long long>(seq), suffix);
  return buf;
}

std::string SnapshotPath(const std::string& dir, uint64_t seq) {
  return (fs::path(dir) / SeqName(kSnapshotPrefix, seq, kSnapshotSuffix))
      .string();
}

std::string WalPath(const std::string& dir, uint64_t seq) {
  return (fs::path(dir) / SeqName(kWalPrefix, seq, kWalSuffix)).string();
}

/// Files named <prefix><decimal seq><suffix> under `dir`, ascending by seq.
/// Anything else (tmp files, strangers) is ignored.
std::vector<StoreFile> ListSeqFiles(const std::string& dir, const char* prefix,
                                    const char* suffix) {
  std::vector<StoreFile> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const size_t plen = std::strlen(prefix);
    const size_t slen = std::strlen(suffix);
    if (name.size() <= plen + slen || name.rfind(prefix, 0) != 0 ||
        name.compare(name.size() - slen, slen, suffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(plen, name.size() - plen - slen);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back({std::strtoull(digits.c_str(), nullptr, 10),
                   entry.path().string()});
  }
  std::sort(out.begin(), out.end(),
            [](const StoreFile& a, const StoreFile& b) {
              return a.seq < b.seq;
            });
  return out;
}

/// Structural schema equality: attribute names and measure directions.
bool SchemaMatches(const Schema& a, const Schema& b) {
  if (a.num_dimensions() != b.num_dimensions() ||
      a.num_measures() != b.num_measures()) {
    return false;
  }
  for (int d = 0; d < a.num_dimensions(); ++d) {
    if (a.dimensions()[d].name != b.dimensions()[d].name) return false;
  }
  for (int j = 0; j < a.num_measures(); ++j) {
    if (a.measures()[j].name != b.measures()[j].name ||
        a.measures()[j].direction != b.measures()[j].direction) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<StoreFile> ListWalSegments(const std::string& dir) {
  return ListSeqFiles(dir, kWalPrefix, kWalSuffix);
}

std::vector<StoreFile> ListSnapshots(const std::string& dir) {
  return ListSeqFiles(dir, kSnapshotPrefix, kSnapshotSuffix);
}

StatusOr<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const DurableOptions& options, const Schema& schema) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("DurableOptions::dir is required");
  }
  if (options.keep_snapshots < 1) {
    return Status::InvalidArgument("keep_snapshots must be >= 1");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create durable dir " + options.dir + ": " +
                           ec.message());
  }

  std::unique_ptr<DurableEngine> d(new DurableEngine());
  d->options_ = options;
  if (d->options_.file_store_dir.empty()) {
    // Default the FS algorithms' bucket directory into the store itself, so
    // reopening needs nothing but `dir` even when the snapshot names a
    // file-backed algorithm.
    d->options_.file_store_dir =
        (fs::path(options.dir) / "fs_store").string();
  }

  std::vector<StoreFile> snapshots =
      ListSeqFiles(options.dir, kSnapshotPrefix, kSnapshotSuffix);

  if (snapshots.empty()) {
    // Fresh store: build the engine from the options and make its (empty)
    // state durable immediately — a genesis snapshot means recovery always
    // has a base to replay onto, and the snapshot carries the schema so
    // later opens need no flags.
    if (schema.num_dimensions() == 0 || schema.num_measures() == 0) {
      return Status::InvalidArgument(
          "creating a durable store needs a schema with at least one "
          "dimension and one measure");
    }
    d->relation_ = std::make_unique<Relation>(schema);
    if (options.num_shards > 0) {
      ShardedEngine::Config config;
      config.num_shards = options.num_shards;
      config.num_threads = options.num_threads;
      config.options = options.discovery;
      config.tau = options.tau;
      config.rank_facts = options.rank_facts;
      d->sharded_engine_ =
          std::make_unique<ShardedEngine>(d->relation_.get(), config);
    } else {
      auto disc_or = DiscoveryEngine::CreateDiscoverer(
          options.algorithm, d->relation_.get(), options.discovery,
          d->options_.file_store_dir);
      if (!disc_or.ok()) return disc_or.status();
      DiscoveryEngine::Config config;
      config.options = options.discovery;
      config.tau = options.tau;
      config.rank_facts =
          options.rank_facts && disc_or.value()->store() != nullptr;
      d->engine_ = std::make_unique<DiscoveryEngine>(
          d->relation_.get(), std::move(disc_or).value(), config);
    }
    d->recovery_.created = true;
    Status genesis = d->Checkpoint();
    if (!genesis.ok()) return genesis;
    return d;
  }

  // Recover: newest loadable snapshot wins. Corrupt or torn snapshots
  // (crash mid-rename, bit rot) fall back to the previous one; config-level
  // failures (unknown algorithm, policy mismatch without the replay escape
  // hatch) abort, because every older snapshot would fail the same way.
  size_t chosen = snapshots.size();
  Status last_error = Status::Ok();
  for (size_t i = snapshots.size(); i-- > 0;) {
    Status attempt = Status::Ok();
    if (options.num_shards > 0) {
      ShardedSnapshotLoadOptions load;
      load.num_shards = options.num_shards;
      load.num_threads = options.num_threads;
      load.allow_replay_rebuild = options.allow_replay_rebuild;
      auto restored_or = LoadShardedEngineSnapshot(snapshots[i].path, load);
      if (restored_or.ok()) {
        RestoredShardedEngine restored = std::move(restored_or).value();
        d->relation_ = std::move(restored.relation);
        d->sharded_engine_ = std::move(restored.engine);
        chosen = i;
        break;
      }
      attempt = restored_or.status();
    } else {
      SnapshotLoadOptions load;
      load.file_store_dir = d->options_.file_store_dir;
      load.allow_replay_rebuild = options.allow_replay_rebuild;
      auto restored_or = LoadEngineSnapshot(snapshots[i].path, load);
      if (restored_or.ok()) {
        RestoredEngine restored = std::move(restored_or).value();
        d->relation_ = std::move(restored.relation);
        d->engine_ = std::move(restored.engine);
        chosen = i;
        break;
      }
      attempt = restored_or.status();
    }
    last_error = attempt;
    if (attempt.code() != StatusCode::kCorruption &&
        attempt.code() != StatusCode::kIoError) {
      return attempt;
    }
  }
  if (chosen == snapshots.size()) {
    return Status::Corruption("no loadable snapshot in " + options.dir + ": " +
                              last_error.ToString());
  }
  if (schema.num_dimensions() != 0 &&
      !SchemaMatches(schema, d->relation_->schema())) {
    return Status::InvalidArgument(
        "requested schema does not match the recovered store's schema");
  }

  const uint64_t snapshot_seq = snapshots[chosen].seq;
  d->recovery_.snapshot_seq = snapshot_seq;
  d->checkpoint_seq_ = snapshot_seq;

  // Replay the WAL tail: every op with seq >= snapshot_seq, in order,
  // stopping at the first torn record, gap, or unreadable file — ops past
  // such a point build on ops that no longer exist. One exception: a torn
  // tail at seq S followed by a segment starting exactly at S is not a
  // loss — it is the scar of a PREVIOUS recovery, which dropped the same
  // tail and rotated to a fresh segment at S; the successor holds the
  // acknowledged re-sent ops and the chain continues through it.
  uint64_t expected = snapshot_seq;
  std::vector<StoreFile> wals = ListSeqFiles(options.dir, kWalPrefix, kWalSuffix);
  // Segment i holds ops [seq_i, seq_{i+1}) when intact; pre-snapshot
  // segments are read too (cheap) with every op skipped by the seq guard.
  // `self` guards against a segment torn in its very first record matching
  // itself (its start_seq still equals the drop point); only a DIFFERENT
  // segment starting there proves a prior recovery already handled the
  // tear.
  auto has_segment_at = [&wals](uint64_t seq, const StoreFile& self) {
    for (const StoreFile& f : wals) {
      if (f.seq == seq && f.path != self.path) return true;
    }
    return false;
  };
  for (const StoreFile& wal_file : wals) {
    if (wal_file.seq > expected) {
      d->recovery_.tail_truncated = true;
      d->recovery_.note = "missing WAL segment before " + wal_file.path;
      break;
    }
    auto contents_or = ReadWal(wal_file.path);
    if (!contents_or.ok()) {
      d->recovery_.tail_truncated = true;
      d->recovery_.note =
          wal_file.path + ": " + contents_or.status().ToString();
      break;
    }
    const WalContents& contents = contents_or.value();
    bool stop = false;
    for (const WalOp& op : contents.ops) {
      if (op.seq < expected) continue;  // already inside the snapshot
      if (op.seq != expected) {
        d->recovery_.tail_truncated = true;
        d->recovery_.note = "sequence gap at op " + std::to_string(op.seq) +
                            " in " + wal_file.path;
        stop = true;
        break;
      }
      Status applied = Status::Ok();
      switch (op.kind) {
        case WalOpKind::kAppend:
          d->ApplyAppend(op.row);
          break;
        case WalOpKind::kRemove:
          applied = d->ApplyRemove(op.target);
          break;
        case WalOpKind::kUpdate: {
          auto report_or = d->ApplyUpdate(op.target, op.row);
          applied = report_or.status();
          break;
        }
        default:
          applied = Status::Corruption("unknown WAL op kind");
      }
      if (!applied.ok()) {
        return Status::Corruption("WAL replay failed at op " +
                                  std::to_string(op.seq) + ": " +
                                  applied.ToString());
      }
      ++expected;
      ++d->recovery_.replayed_ops;
    }
    if (stop) break;
    if (!contents.clean_tail && !has_segment_at(expected, wal_file)) {
      d->recovery_.tail_truncated = true;
      d->recovery_.note = wal_file.path + ": " + contents.tail_note;
      break;
    }
  }

  d->next_seq_ = expected;
  // Segments starting past the recovered cursor are a dead timeline: their
  // ops build on ops the walk above declared lost, so they can never be
  // validly replayed — and leaving them around would let a future recovery
  // splice them onto the new timeline once re-sent ops advance the cursor
  // back to their start_seq. Remove them now.
  for (const StoreFile& wal_file : wals) {
    if (wal_file.seq > expected) {
      std::error_code ignored;
      fs::remove(wal_file.path, ignored);
    }
  }
  // Creating the new segment truncates any file already named
  // wal-<expected>; safe, because the chain walk above replayed (or
  // deliberately dropped) everything such a file could hold.
  auto wal_or = WalWriter::Create(WalPath(options.dir, expected), expected);
  if (!wal_or.ok()) return wal_or.status();
  d->wal_ = std::move(wal_or).value();
  return d;
}

DurableEngine::~DurableEngine() {
  if (wal_ != nullptr) wal_->Close();
}

std::string DurableEngine::algorithm() const {
  return engine_ != nullptr ? std::string(engine_->discoverer().name())
                            : std::string(sharded_engine_->discoverer().name());
}

Status DurableEngine::Log(WalOp op) {
  // A failed write or fsync poisons the segment: the frame's bytes may
  // already be in the file, so reusing the sequence number would let
  // recovery replay the failed op in place of its acknowledged successor.
  // Latch the failure; the store must be reopened (which drops the torn
  // frame) before accepting ops again.
  if (!wal_status_.ok()) return wal_status_;
  op.seq = next_seq_;
  Status logged = wal_->Append(op);
  if (!logged.ok()) {
    wal_status_ = logged;
    return logged;
  }
  if (options_.sync_every_op) {
    Status synced = wal_->Sync();
    if (!synced.ok()) {
      wal_status_ = synced;
      return synced;
    }
  }
  ++next_seq_;
  return Status::Ok();
}

ArrivalReport DurableEngine::ApplyAppend(const Row& row) {
  return engine_ != nullptr ? engine_->Append(row)
                            : sharded_engine_->Append(row);
}

Status DurableEngine::ApplyRemove(TupleId t) {
  return engine_ != nullptr ? engine_->Remove(t) : sharded_engine_->Remove(t);
}

StatusOr<ArrivalReport> DurableEngine::ApplyUpdate(TupleId t, const Row& row) {
  return engine_ != nullptr ? engine_->Update(t, row)
                            : sharded_engine_->Update(t, row);
}

void DurableEngine::MaybeAutoCheckpoint() {
  if (options_.checkpoint_every == 0 ||
      ops_since_checkpoint() < options_.checkpoint_every) {
    return;
  }
  // A failure here must not fail the op that triggered it: the op is
  // already durable in the WAL and applied to the engine. Latch the outcome
  // instead; ops_since_checkpoint stays over the threshold, so the next op
  // retries.
  checkpoint_status_ = Checkpoint();
}

/// Arity must be validated BEFORE logging: a mismatched row would
/// CHECK-fail inside Relation::Append — and if its record reached the WAL
/// first, every recovery would replay it and abort, bricking the store.
Status DurableEngine::CheckRowArity(const Row& row) const {
  if (row.dimensions.size() !=
          static_cast<size_t>(relation_->schema().num_dimensions()) ||
      row.measures.size() !=
          static_cast<size_t>(relation_->schema().num_measures())) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  return Status::Ok();
}

StatusOr<ArrivalReport> DurableEngine::Append(const Row& row) {
  Status arity = CheckRowArity(row);
  if (!arity.ok()) return arity;
  WalOp op;
  op.kind = WalOpKind::kAppend;
  op.row = row;
  Status logged = Log(std::move(op));
  if (!logged.ok()) return logged;
  ArrivalReport report = ApplyAppend(row);
  MaybeAutoCheckpoint();
  return report;
}

DurableEngine::BatchResult DurableEngine::AppendBatch(
    std::span<const Row> rows) {
  // Log first — an op must be durable before its effects exist. If logging
  // fails partway, the durable prefix is still applied (the engine never
  // lags its own log) and its reports are returned next to the error.
  BatchResult result;
  size_t logged_rows = 0;
  for (const Row& row : rows) {
    result.status = CheckRowArity(row);
    if (!result.status.ok()) break;
    WalOp op;
    op.kind = WalOpKind::kAppend;
    op.row = row;
    result.status = Log(std::move(op));
    if (!result.status.ok()) break;
    ++logged_rows;
  }
  std::span<const Row> to_apply = rows.subspan(0, logged_rows);
  if (sharded_engine_ != nullptr) {
    result.reports = sharded_engine_->AppendBatch(to_apply);
  } else {
    result.reports.reserve(to_apply.size());
    for (const Row& row : to_apply) {
      result.reports.push_back(engine_->Append(row));
    }
  }
  if (result.status.ok()) MaybeAutoCheckpoint();
  return result;
}

Status DurableEngine::Remove(TupleId t) {
  // Validate before logging so a rejected op (unknown or already-deleted
  // tuple) leaves no WAL record behind.
  if (t >= relation_->size() || relation_->IsDeleted(t)) {
    return Status::InvalidArgument("no such live tuple");
  }
  WalOp op;
  op.kind = WalOpKind::kRemove;
  op.target = t;
  Status logged = Log(std::move(op));
  if (!logged.ok()) return logged;
  Status removed = ApplyRemove(t);
  if (!removed.ok()) return removed;
  MaybeAutoCheckpoint();
  return Status::Ok();
}

StatusOr<ArrivalReport> DurableEngine::Update(TupleId t, const Row& row) {
  if (t >= relation_->size() || relation_->IsDeleted(t)) {
    return Status::InvalidArgument("no such live tuple");
  }
  Status arity = CheckRowArity(row);
  if (!arity.ok()) return arity;
  WalOp op;
  op.kind = WalOpKind::kUpdate;
  op.target = t;
  op.row = row;
  Status logged = Log(std::move(op));
  if (!logged.ok()) return logged;
  auto report_or = ApplyUpdate(t, row);
  if (!report_or.ok()) return report_or.status();
  MaybeAutoCheckpoint();
  return report_or;
}

Status DurableEngine::Checkpoint() {
  const uint64_t seq = next_seq_;
  const std::string final_path = SnapshotPath(options_.dir, seq);
  const std::string tmp_path = final_path + ".tmp";

  // Snapshot to a temp name, then rename: readers either see the whole
  // CRC-valid file or none of it.
  Status saved = engine_ != nullptr
                     ? SaveEngineSnapshot(*engine_, tmp_path)
                     : SaveEngineSnapshot(*sharded_engine_, tmp_path);
  if (!saved.ok()) {
    std::error_code ignored;
    fs::remove(tmp_path, ignored);
    return saved;
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp_path, ignored);
    return Status::IoError("cannot publish snapshot " + final_path + ": " +
                           ec.message());
  }

  // Rotate the log: new ops land in a fresh segment starting at `seq`.
  if (wal_ != nullptr) wal_->Close();
  auto wal_or = WalWriter::Create(WalPath(options_.dir, seq), seq);
  if (!wal_or.ok()) return wal_or.status();
  wal_ = std::move(wal_or).value();
  checkpoint_seq_ = seq;

  // Prune. Snapshots: keep the newest keep_snapshots. WAL segments: segment
  // i covers [start_i, start_{i+1}), so it stays while any retained
  // snapshot might need it for replay — i.e. while its end is beyond the
  // oldest retained snapshot's seq.
  std::vector<StoreFile> snapshots =
      ListSeqFiles(options_.dir, kSnapshotPrefix, kSnapshotSuffix);
  uint64_t oldest_kept = seq;
  if (snapshots.size() > static_cast<size_t>(options_.keep_snapshots)) {
    const size_t drop = snapshots.size() -
                        static_cast<size_t>(options_.keep_snapshots);
    for (size_t i = 0; i < drop; ++i) {
      std::error_code ignored;
      fs::remove(snapshots[i].path, ignored);
    }
    snapshots.erase(snapshots.begin(),
                    snapshots.begin() + static_cast<ptrdiff_t>(drop));
  }
  if (!snapshots.empty()) oldest_kept = snapshots.front().seq;

  std::vector<StoreFile> wals =
      ListSeqFiles(options_.dir, kWalPrefix, kWalSuffix);
  for (size_t i = 0; i + 1 < wals.size(); ++i) {
    if (wals[i + 1].seq <= oldest_kept) {
      std::error_code ignored;
      fs::remove(wals[i].path, ignored);
    }
  }
  return Status::Ok();
}

}  // namespace persist
}  // namespace sitfact
