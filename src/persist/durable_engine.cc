#include "persist/durable_engine.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/binary_io.h"
#include "io/snapshot.h"
#include "storage/mu_store.h"

namespace sitfact {
namespace persist {

namespace fs = std::filesystem;

namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".sfsnap";
constexpr char kWalPrefix[] = "wal-";
constexpr char kWalSuffix[] = ".sfwal";
constexpr char kDeltaPrefix[] = "delta-";
constexpr char kDeltaSuffix[] = ".sfdelta";

/// Delta checkpoint file (docs/persistence.md "Delta checkpoints"):
///   "SFDELTA1"  magic, 8 bytes
///   u32         format version (1)
///   u64         base_seq  — the full snapshot this chain roots at
///   u64         prev_seq  — the previous checkpoint in the chain (base_seq
///               for the first delta)
///   u64         delta_seq — the state is current through ops [0, delta_seq)
///   u8          storage policy of the buckets (Invariant 1 or 2)
///   u32         dimension count (sanity against the restored relation)
///   u64         relation row count (incl. tombstones) at delta_seq
///   u64         bucket count, then per bucket:
///               constraint | u32 subspace mask | u32 len | u32 ids...
///               (len 0 = bucket removed)
///   u32         CRC-32 over everything above
constexpr char kDeltaMagic[8] = {'S', 'F', 'D', 'E', 'L', 'T', 'A', '1'};
constexpr uint32_t kDeltaVersion = 1;
constexpr uint64_t kMaxDeltaBuckets = 1ull << 33;

struct DeltaBucket {
  Constraint constraint;
  MeasureMask mask = 0;
  std::vector<TupleId> tuples;
};

struct DeltaContents {
  uint64_t base_seq = 0;
  uint64_t prev_seq = 0;
  uint64_t delta_seq = 0;
  StoragePolicy policy = StoragePolicy::kAllSkylineConstraints;
  uint64_t rows = 0;
  std::vector<DeltaBucket> buckets;
};

StatusOr<DeltaContents> ReadDeltaFile(const std::string& path, int num_dims) {
  BinaryReader r(path);
  char magic[sizeof(kDeltaMagic)];
  r.ReadRaw(magic, sizeof(magic));
  if (!r.ok()) return r.status();
  if (std::memcmp(magic, kDeltaMagic, sizeof(kDeltaMagic)) != 0) {
    return Status::Corruption("not a sitfact delta (bad magic): " + path);
  }
  const uint32_t version = r.ReadU32();
  if (version != kDeltaVersion) {
    return Status::Corruption("unsupported delta version " +
                              std::to_string(version));
  }
  DeltaContents out;
  out.base_seq = r.ReadU64();
  out.prev_seq = r.ReadU64();
  out.delta_seq = r.ReadU64();
  out.policy = static_cast<StoragePolicy>(r.ReadU8());
  const uint32_t dims = r.ReadU32();
  out.rows = r.ReadU64();
  if (!r.ok()) return r.status();
  if (dims != static_cast<uint32_t>(num_dims)) {
    return Status::Corruption("delta dimension count mismatch in " + path);
  }
  const uint64_t buckets = r.ReadU64();
  if (!r.CheckCount(buckets, kMaxDeltaBuckets, "delta bucket count")) {
    return r.status();
  }
  for (uint64_t i = 0; i < buckets; ++i) {
    DeltaBucket b;
    b.constraint = DeserializeConstraint(&r, num_dims);
    b.mask = r.ReadU32();
    const uint32_t len = r.ReadU32();
    if (!r.CheckCount(len, out.rows, "delta bucket size")) return r.status();
    b.tuples.resize(len);
    for (uint32_t k = 0; k < len; ++k) {
      b.tuples[k] = r.ReadU32();
      if (b.tuples[k] >= out.rows) {
        return Status::Corruption("delta bucket tuple id out of range");
      }
    }
    if (!r.ok()) return r.status();
    out.buckets.push_back(std::move(b));
  }
  r.VerifyChecksum();
  if (!r.ok()) return r.status();
  return out;
}

std::string SeqName(const char* prefix, uint64_t seq, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020llu%s", prefix,
                static_cast<unsigned long long>(seq), suffix);
  return buf;
}

std::string SnapshotPath(const std::string& dir, uint64_t seq) {
  return (fs::path(dir) / SeqName(kSnapshotPrefix, seq, kSnapshotSuffix))
      .string();
}

std::string WalPath(const std::string& dir, uint64_t seq) {
  return (fs::path(dir) / SeqName(kWalPrefix, seq, kWalSuffix)).string();
}

std::string DeltaPath(const std::string& dir, uint64_t seq) {
  return (fs::path(dir) / SeqName(kDeltaPrefix, seq, kDeltaSuffix)).string();
}

/// Files named <prefix><decimal seq><suffix> under `dir`, ascending by seq.
/// Anything else (tmp files, strangers) is ignored.
std::vector<StoreFile> ListSeqFiles(const std::string& dir, const char* prefix,
                                    const char* suffix) {
  std::vector<StoreFile> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    const size_t plen = std::strlen(prefix);
    const size_t slen = std::strlen(suffix);
    if (name.size() <= plen + slen || name.rfind(prefix, 0) != 0 ||
        name.compare(name.size() - slen, slen, suffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(plen, name.size() - plen - slen);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    out.push_back({std::strtoull(digits.c_str(), nullptr, 10),
                   entry.path().string()});
  }
  std::sort(out.begin(), out.end(),
            [](const StoreFile& a, const StoreFile& b) {
              return a.seq < b.seq;
            });
  return out;
}

/// Structural schema equality: attribute names and measure directions.
bool SchemaMatches(const Schema& a, const Schema& b) {
  if (a.num_dimensions() != b.num_dimensions() ||
      a.num_measures() != b.num_measures()) {
    return false;
  }
  for (int d = 0; d < a.num_dimensions(); ++d) {
    if (a.dimensions()[d].name != b.dimensions()[d].name) return false;
  }
  for (int j = 0; j < a.num_measures(); ++j) {
    if (a.measures()[j].name != b.measures()[j].name ||
        a.measures()[j].direction != b.measures()[j].direction) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<StoreFile> ListWalSegments(const std::string& dir) {
  return ListSeqFiles(dir, kWalPrefix, kWalSuffix);
}

std::vector<StoreFile> ListSnapshots(const std::string& dir) {
  return ListSeqFiles(dir, kSnapshotPrefix, kSnapshotSuffix);
}

std::vector<StoreFile> ListDeltas(const std::string& dir) {
  return ListSeqFiles(dir, kDeltaPrefix, kDeltaSuffix);
}

StatusOr<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const DurableOptions& options, const Schema& schema) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("DurableOptions::dir is required");
  }
  if (options.keep_snapshots < 1) {
    return Status::InvalidArgument("keep_snapshots must be >= 1");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IoError("cannot create durable dir " + options.dir + ": " +
                           ec.message());
  }

  std::unique_ptr<DurableEngine> d(new DurableEngine());
  d->options_ = options;
  if (d->options_.file_store_dir.empty()) {
    // Default the FS algorithms' bucket directory into the store itself, so
    // reopening needs nothing but `dir` even when the snapshot names a
    // file-backed algorithm.
    d->options_.file_store_dir =
        (fs::path(options.dir) / "fs_store").string();
  }

  std::vector<StoreFile> snapshots =
      ListSeqFiles(options.dir, kSnapshotPrefix, kSnapshotSuffix);

  if (snapshots.empty()) {
    // Fresh store: build the engine from the options and make its (empty)
    // state durable immediately — a genesis snapshot means recovery always
    // has a base to replay onto, and the snapshot carries the schema so
    // later opens need no flags.
    if (schema.num_dimensions() == 0 || schema.num_measures() == 0) {
      return Status::InvalidArgument(
          "creating a durable store needs a schema with at least one "
          "dimension and one measure");
    }
    d->relation_ = std::make_unique<Relation>(schema);
    if (options.num_shards > 0) {
      ShardedEngine::Config config;
      config.num_shards = options.num_shards;
      config.num_threads = options.num_threads;
      config.options = options.discovery;
      config.tau = options.tau;
      config.rank_facts = options.rank_facts;
      d->sharded_engine_ =
          std::make_unique<ShardedEngine>(d->relation_.get(), config);
    } else {
      auto disc_or = DiscoveryEngine::CreateDiscoverer(
          options.algorithm, d->relation_.get(), options.discovery,
          d->options_.file_store_dir);
      if (!disc_or.ok()) return disc_or.status();
      DiscoveryEngine::Config config;
      config.options = options.discovery;
      config.tau = options.tau;
      config.rank_facts =
          options.rank_facts && disc_or.value()->store() != nullptr;
      d->engine_ = std::make_unique<DiscoveryEngine>(
          d->relation_.get(), std::move(disc_or).value(), config);
    }
    d->recovery_.created = true;
    d->EnableDeltaTrackingIfEligible();
    // The genesis checkpoint is always full — a delta has no base yet.
    Status genesis = d->CheckpointFull(d->next_seq_);
    if (!genesis.ok()) return genesis;
    return d;
  }

  // Recover: newest loadable snapshot wins. Corrupt or torn snapshots
  // (crash mid-rename, bit rot) fall back to the previous one; config-level
  // failures (unknown algorithm, policy mismatch without the replay escape
  // hatch) abort, because every older snapshot would fail the same way.
  size_t chosen = snapshots.size();
  Status last_error = Status::Ok();
  for (size_t i = snapshots.size(); i-- > 0;) {
    Status attempt = Status::Ok();
    if (options.num_shards > 0) {
      ShardedSnapshotLoadOptions load;
      load.num_shards = options.num_shards;
      load.num_threads = options.num_threads;
      load.allow_replay_rebuild = options.allow_replay_rebuild;
      load.storage = options.discovery.storage;
      auto restored_or = LoadShardedEngineSnapshot(snapshots[i].path, load);
      if (restored_or.ok()) {
        RestoredShardedEngine restored = std::move(restored_or).value();
        d->relation_ = std::move(restored.relation);
        d->sharded_engine_ = std::move(restored.engine);
        chosen = i;
        break;
      }
      attempt = restored_or.status();
    } else {
      SnapshotLoadOptions load;
      load.file_store_dir = d->options_.file_store_dir;
      load.allow_replay_rebuild = options.allow_replay_rebuild;
      load.storage = options.discovery.storage;
      auto restored_or = LoadEngineSnapshot(snapshots[i].path, load);
      if (restored_or.ok()) {
        RestoredEngine restored = std::move(restored_or).value();
        d->relation_ = std::move(restored.relation);
        d->engine_ = std::move(restored.engine);
        chosen = i;
        break;
      }
      attempt = restored_or.status();
    }
    last_error = attempt;
    if (attempt.code() != StatusCode::kCorruption &&
        attempt.code() != StatusCode::kIoError) {
      return attempt;
    }
  }
  if (chosen == snapshots.size()) {
    return Status::Corruption("no loadable snapshot in " + options.dir + ": " +
                              last_error.ToString());
  }
  if (schema.num_dimensions() != 0 &&
      !SchemaMatches(schema, d->relation_->schema())) {
    return Status::InvalidArgument(
        "requested schema does not match the recovered store's schema");
  }

  const uint64_t snapshot_seq = snapshots[chosen].seq;
  d->recovery_.snapshot_seq = snapshot_seq;
  d->checkpoint_seq_ = snapshot_seq;
  d->full_base_seq_ = snapshot_seq;
  d->last_chain_seq_ = snapshot_seq;
  const uint64_t base_rows = d->relation_->size();

  // Collect the WAL tail: every op with seq >= snapshot_seq, in order,
  // stopping at the first torn record, gap, or unreadable file — ops past
  // such a point build on ops that no longer exist. One exception: a torn
  // tail at seq S followed by a segment starting exactly at S is not a
  // loss — it is the scar of a PREVIOUS recovery, which dropped the same
  // tail and rotated to a fresh segment at S; the successor holds the
  // acknowledged re-sent ops and the chain continues through it.
  // Application is deferred until after the delta chain is chosen: ops the
  // chain covers fold in count-only, the rest replay in full.
  uint64_t expected = snapshot_seq;
  std::vector<WalOp> pending;
  std::vector<StoreFile> wals = ListSeqFiles(options.dir, kWalPrefix, kWalSuffix);
  // Segment i holds ops [seq_i, seq_{i+1}) when intact; pre-snapshot
  // segments are read too (cheap) with every op skipped by the seq guard.
  // `self` guards against a segment torn in its very first record matching
  // itself (its start_seq still equals the drop point); only a DIFFERENT
  // segment starting there proves a prior recovery already handled the
  // tear.
  auto has_segment_at = [&wals](uint64_t seq, const StoreFile& self) {
    for (const StoreFile& f : wals) {
      if (f.seq == seq && f.path != self.path) return true;
    }
    return false;
  };
  for (const StoreFile& wal_file : wals) {
    if (wal_file.seq > expected) {
      d->recovery_.tail_truncated = true;
      d->recovery_.note = "missing WAL segment before " + wal_file.path;
      break;
    }
    auto contents_or = ReadWal(wal_file.path);
    if (!contents_or.ok()) {
      d->recovery_.tail_truncated = true;
      d->recovery_.note =
          wal_file.path + ": " + contents_or.status().ToString();
      break;
    }
    const WalContents& contents = contents_or.value();
    bool stop = false;
    for (const WalOp& op : contents.ops) {
      if (op.seq < expected) continue;  // already inside the snapshot
      if (op.seq != expected) {
        d->recovery_.tail_truncated = true;
        d->recovery_.note = "sequence gap at op " + std::to_string(op.seq) +
                            " in " + wal_file.path;
        stop = true;
        break;
      }
      pending.push_back(op);
      ++expected;
    }
    if (stop) break;
    if (!contents.clean_tail && !has_segment_at(expected, wal_file)) {
      d->recovery_.tail_truncated = true;
      d->recovery_.note = wal_file.path + ": " + contents.tail_note;
      break;
    }
  }

  d->next_seq_ = expected;
  // Segments starting past the recovered cursor are a dead timeline: their
  // ops build on ops the walk above declared lost, so they can never be
  // validly replayed — and leaving them around would let a future recovery
  // splice them onto the new timeline once re-sent ops advance the cursor
  // back to their start_seq. Remove them now. The same applies to delta
  // checkpoints past the cursor: their buckets reference tuples whose
  // arrivals were just dropped.
  for (const StoreFile& wal_file : wals) {
    if (wal_file.seq > expected) {
      std::error_code ignored;
      fs::remove(wal_file.path, ignored);
    }
  }
  std::vector<StoreFile> delta_files =
      ListSeqFiles(options.dir, kDeltaPrefix, kDeltaSuffix);
  {
    auto dead = std::partition(
        delta_files.begin(), delta_files.end(),
        [expected](const StoreFile& f) { return f.seq <= expected; });
    for (auto it = dead; it != delta_files.end(); ++it) {
      std::error_code ignored;
      fs::remove(it->path, ignored);
    }
    delta_files.erase(dead, delta_files.end());
  }

  // Choose the longest valid delta chain rooted at the recovered snapshot:
  // base_seq must name it, prev_seq links each delta to its predecessor,
  // and every file must decode CRC-clean with a row count matching what the
  // WAL tail proves existed at its delta_seq. A corrupt or inconsistent
  // delta simply shortens the chain — the ops it covered replay in full
  // instead, so recovery degrades in time, never in correctness.
  std::vector<DeltaContents> chain;
  MuStore* store = d->mu_store();
  if (store != nullptr && !delta_files.empty()) {
    const StoragePolicy policy = d->storage_policy();
    const int dims = d->relation_->schema().num_dimensions();
    // Row count at seq s = base rows + arrivals among ops [snapshot_seq, s).
    std::vector<uint64_t> rows_at(pending.size() + 1, base_rows);
    for (size_t i = 0; i < pending.size(); ++i) {
      rows_at[i + 1] =
          rows_at[i] + (pending[i].kind == WalOpKind::kRemove ? 0 : 1);
    }
    uint64_t current = snapshot_seq;
    bool extended = true;
    while (extended) {
      extended = false;
      // Newest candidate first: after a chain cut, re-sent ops rebuild the
      // same timeline (the WAL survived), so any decodable delta at a given
      // seq is an equally valid state dump — prefer the longest jump.
      for (size_t i = delta_files.size(); i-- > 0;) {
        const StoreFile& f = delta_files[i];
        if (f.seq <= current) break;
        auto delta_or = ReadDeltaFile(f.path, dims);
        if (!delta_or.ok()) {
          d->recovery_.delta_note = f.path + ": " +
                                    delta_or.status().ToString();
          continue;
        }
        DeltaContents delta = std::move(delta_or).value();
        if (delta.base_seq != snapshot_seq || delta.prev_seq != current ||
            delta.delta_seq != f.seq) {
          continue;
        }
        if (delta.policy != policy) {
          d->recovery_.delta_note = f.path + ": storage policy mismatch";
          continue;
        }
        if (delta.rows != rows_at[delta.delta_seq - snapshot_seq]) {
          d->recovery_.delta_note = f.path + ": row count mismatch";
          continue;
        }
        current = delta.delta_seq;
        chain.push_back(std::move(delta));
        extended = true;
        break;
      }
    }
  }

  // Apply: ops the chain covers fold in count-only (relation rows + context
  // cardinalities — the cheap, order-independent part of an arrival), the
  // chain's buckets overwrite the base state in order, and everything past
  // the chain replays through full discovery.
  const uint64_t chain_end =
      chain.empty() ? snapshot_seq : chain.back().delta_seq;
  const size_t split = static_cast<size_t>(chain_end - snapshot_seq);
  for (size_t i = 0; i < split; ++i) {
    Status applied = d->ApplyCountOnly(pending[i]);
    if (!applied.ok()) {
      return Status::Corruption("count-only WAL replay failed at op " +
                                std::to_string(pending[i].seq) + ": " +
                                applied.ToString());
    }
    ++d->recovery_.count_only_ops;
  }
  for (const DeltaContents& delta : chain) {
    for (const DeltaBucket& b : delta.buckets) {
      store->GetOrCreate(b.constraint)->Write(b.mask, b.tuples);
    }
  }
  d->recovery_.delta_chain = chain.size();
  if (!chain.empty()) {
    d->checkpoint_seq_ = chain_end;
    d->last_chain_seq_ = chain_end;
    d->deltas_since_full_ = static_cast<int>(chain.size());
    if (d->engine_ != nullptr) {
      Status rebuilt = d->engine_->discoverer().RebuildAuxiliary();
      if (!rebuilt.ok()) return rebuilt;
    }
  }
  // Dirty tracking starts here: the fully-replayed ops below mutate buckets
  // the next delta checkpoint must capture. (The delta writes above happen
  // with tracking off — their state is already durable.)
  d->EnableDeltaTrackingIfEligible();
  for (size_t i = split; i < pending.size(); ++i) {
    const WalOp& op = pending[i];
    Status applied = Status::Ok();
    switch (op.kind) {
      case WalOpKind::kAppend:
        d->ApplyAppend(op.row);
        break;
      case WalOpKind::kRemove:
        applied = d->ApplyRemove(op.target);
        break;
      case WalOpKind::kUpdate: {
        auto report_or = d->ApplyUpdate(op.target, op.row);
        applied = report_or.status();
        break;
      }
      default:
        applied = Status::Corruption("unknown WAL op kind");
    }
    if (!applied.ok()) {
      return Status::Corruption("WAL replay failed at op " +
                                std::to_string(op.seq) + ": " +
                                applied.ToString());
    }
    ++d->recovery_.replayed_ops;
  }

  // Creating the new segment truncates any file already named
  // wal-<expected>; safe, because the chain walk above replayed (or
  // deliberately dropped) everything such a file could hold.
  auto wal_or = WalWriter::Create(WalPath(options.dir, expected), expected);
  if (!wal_or.ok()) return wal_or.status();
  d->wal_ = std::move(wal_or).value();
  return d;
}

DurableEngine::~DurableEngine() {
  if (wal_ != nullptr) wal_->Close();
}

std::string DurableEngine::algorithm() const {
  return engine_ != nullptr ? std::string(engine_->discoverer().name())
                            : std::string(sharded_engine_->discoverer().name());
}

Status DurableEngine::Log(WalOp op) {
  // A failed write or fsync poisons the segment: the frame's bytes may
  // already be in the file, so reusing the sequence number would let
  // recovery replay the failed op in place of its acknowledged successor.
  // Latch the failure; the store must be reopened (which drops the torn
  // frame) before accepting ops again.
  if (!wal_status_.ok()) return wal_status_;
  op.seq = next_seq_;
  Status logged = wal_->Append(op);
  if (!logged.ok()) {
    wal_status_ = logged;
    return logged;
  }
  if (options_.sync_every_op) {
    Status synced = wal_->Sync();
    if (!synced.ok()) {
      wal_status_ = synced;
      return synced;
    }
  }
  ++next_seq_;
  return Status::Ok();
}

ArrivalReport DurableEngine::ApplyAppend(const Row& row) {
  return engine_ != nullptr ? engine_->Append(row)
                            : sharded_engine_->Append(row);
}

Status DurableEngine::ApplyRemove(TupleId t) {
  return engine_ != nullptr ? engine_->Remove(t) : sharded_engine_->Remove(t);
}

StatusOr<ArrivalReport> DurableEngine::ApplyUpdate(TupleId t, const Row& row) {
  return engine_ != nullptr ? engine_->Update(t, row)
                            : sharded_engine_->Update(t, row);
}

void DurableEngine::MaybeAutoCheckpoint() {
  if (options_.checkpoint_every == 0 ||
      ops_since_checkpoint() < options_.checkpoint_every) {
    return;
  }
  // A failure here must not fail the op that triggered it: the op is
  // already durable in the WAL and applied to the engine. Latch the outcome
  // instead; ops_since_checkpoint stays over the threshold, so the next op
  // retries.
  checkpoint_status_ = Checkpoint();
}

/// Arity must be validated BEFORE logging: a mismatched row would
/// CHECK-fail inside Relation::Append — and if its record reached the WAL
/// first, every recovery would replay it and abort, bricking the store.
Status DurableEngine::CheckRowArity(const Row& row) const {
  if (row.dimensions.size() !=
          static_cast<size_t>(relation_->schema().num_dimensions()) ||
      row.measures.size() !=
          static_cast<size_t>(relation_->schema().num_measures())) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  return Status::Ok();
}

StatusOr<ArrivalReport> DurableEngine::Append(const Row& row) {
  Status arity = CheckRowArity(row);
  if (!arity.ok()) return arity;
  WalOp op;
  op.kind = WalOpKind::kAppend;
  op.row = row;
  Status logged = Log(std::move(op));
  if (!logged.ok()) return logged;
  ArrivalReport report = ApplyAppend(row);
  MaybeAutoCheckpoint();
  return report;
}

DurableEngine::BatchResult DurableEngine::AppendBatch(
    std::span<const Row> rows) {
  // Log first — an op must be durable before its effects exist. If logging
  // fails partway, the durable prefix is still applied (the engine never
  // lags its own log) and its reports are returned next to the error.
  BatchResult result;
  size_t logged_rows = 0;
  for (const Row& row : rows) {
    result.status = CheckRowArity(row);
    if (!result.status.ok()) break;
    WalOp op;
    op.kind = WalOpKind::kAppend;
    op.row = row;
    result.status = Log(std::move(op));
    if (!result.status.ok()) break;
    ++logged_rows;
  }
  std::span<const Row> to_apply = rows.subspan(0, logged_rows);
  if (sharded_engine_ != nullptr) {
    result.reports = sharded_engine_->AppendBatch(to_apply);
  } else {
    result.reports.reserve(to_apply.size());
    for (const Row& row : to_apply) {
      result.reports.push_back(engine_->Append(row));
    }
  }
  if (result.status.ok()) MaybeAutoCheckpoint();
  return result;
}

Status DurableEngine::Remove(TupleId t) {
  // Validate before logging so a rejected op (unknown or already-deleted
  // tuple) leaves no WAL record behind.
  if (t >= relation_->size() || relation_->IsDeleted(t)) {
    return Status::InvalidArgument("no such live tuple");
  }
  WalOp op;
  op.kind = WalOpKind::kRemove;
  op.target = t;
  Status logged = Log(std::move(op));
  if (!logged.ok()) return logged;
  Status removed = ApplyRemove(t);
  if (!removed.ok()) return removed;
  MaybeAutoCheckpoint();
  return Status::Ok();
}

StatusOr<ArrivalReport> DurableEngine::Update(TupleId t, const Row& row) {
  if (t >= relation_->size() || relation_->IsDeleted(t)) {
    return Status::InvalidArgument("no such live tuple");
  }
  Status arity = CheckRowArity(row);
  if (!arity.ok()) return arity;
  WalOp op;
  op.kind = WalOpKind::kUpdate;
  op.target = t;
  op.row = row;
  Status logged = Log(std::move(op));
  if (!logged.ok()) return logged;
  auto report_or = ApplyUpdate(t, row);
  if (!report_or.ok()) return report_or.status();
  MaybeAutoCheckpoint();
  return report_or;
}

MuStore* DurableEngine::mu_store() {
  if (engine_ != nullptr) return engine_->discoverer().mutable_store();
  return sharded_engine_ != nullptr
             ? sharded_engine_->discoverer().mutable_store()
             : nullptr;
}

StoragePolicy DurableEngine::storage_policy() {
  return engine_ != nullptr ? engine_->discoverer().storage_policy()
                            : StoragePolicy::kAllSkylineConstraints;
}

void DurableEngine::EnableDeltaTrackingIfEligible() {
  if (!options_.delta_checkpoints) return;
  MuStore* store = mu_store();
  if (store == nullptr || !store->SupportsDirtyTracking()) return;
  // Delta recovery rewrites buckets through the dump path, so the algorithm
  // must restore from bucket dumps. C-CSC keeps private skycubes and opts
  // out; the sharded discoverer restores through its own segment path and
  // is always eligible.
  if (engine_ != nullptr &&
      !engine_->discoverer().SupportsSnapshotRestore()) {
    return;
  }
  store->set_dirty_tracking(true);
}

Status DurableEngine::ApplyCountOnly(const WalOp& op) {
  switch (op.kind) {
    case WalOpKind::kAppend: {
      const TupleId t = relation_->Append(op.row);
      if (engine_ != nullptr) {
        engine_->mutable_counter().OnArrival(*relation_, t);
      } else {
        sharded_engine_->discoverer().CountArrival(t);
      }
      return Status::Ok();
    }
    case WalOpKind::kRemove: {
      if (op.target >= relation_->size() || relation_->IsDeleted(op.target)) {
        return Status::Corruption("count-only remove of a non-live tuple");
      }
      relation_->MarkDeleted(op.target);
      if (engine_ != nullptr) {
        engine_->mutable_counter().OnRemoval(*relation_, op.target);
      } else {
        sharded_engine_->discoverer().CountRemoval(op.target);
      }
      return Status::Ok();
    }
    case WalOpKind::kUpdate: {
      WalOp remove;
      remove.kind = WalOpKind::kRemove;
      remove.target = op.target;
      Status removed = ApplyCountOnly(remove);
      if (!removed.ok()) return removed;
      WalOp append;
      append.kind = WalOpKind::kAppend;
      append.row = op.row;
      return ApplyCountOnly(append);
    }
  }
  return Status::Corruption("unknown WAL op kind");
}

Status DurableEngine::RotateWal(uint64_t seq) {
  if (wal_ != nullptr) wal_->Close();
  auto wal_or = WalWriter::Create(WalPath(options_.dir, seq), seq);
  if (!wal_or.ok()) return wal_or.status();
  wal_ = std::move(wal_or).value();
  checkpoint_seq_ = seq;
  return Status::Ok();
}

Status DurableEngine::Checkpoint() {
  const uint64_t seq = next_seq_;
  // The state at `seq` is already durably checkpointed; rewriting it would
  // only fork the delta chain onto its own name.
  if (seq == checkpoint_seq_) return Status::Ok();
  MuStore* store = mu_store();
  const int full_every = std::max(options_.full_snapshot_every, 1);
  const bool delta = options_.delta_checkpoints && store != nullptr &&
                     store->dirty_tracking() &&
                     deltas_since_full_ + 1 < full_every;
  return delta ? CheckpointDelta(seq) : CheckpointFull(seq);
}

Status DurableEngine::CheckpointDelta(uint64_t seq) {
  MuStore* store = mu_store();
  const std::string final_path = DeltaPath(options_.dir, seq);
  const std::string tmp_path = final_path + ".tmp";

  // Same publication discipline as full snapshots: write to a temp name,
  // rename; readers see the whole CRC-valid file or none of it.
  BinaryWriter w(tmp_path);
  w.WriteRaw(kDeltaMagic, sizeof(kDeltaMagic));
  w.WriteU32(kDeltaVersion);
  w.WriteU64(full_base_seq_);
  w.WriteU64(last_chain_seq_);
  w.WriteU64(seq);
  w.WriteU8(static_cast<uint8_t>(storage_policy()));
  w.WriteU32(static_cast<uint32_t>(relation_->schema().num_dimensions()));
  w.WriteU64(relation_->size());
  w.WriteU64(store->DirtyBucketCount());
  std::vector<std::pair<Constraint, MeasureMask>> dirty;
  store->ForEachDirtyBucket([&dirty](const Constraint& c, MeasureMask m) {
    dirty.emplace_back(c, m);
  });
  std::vector<TupleId> bucket;
  for (const auto& [c, m] : dirty) {
    bucket.clear();
    MuStore::Context* ctx = store->Find(c);
    if (ctx != nullptr) ctx->Read(m, &bucket);
    SerializeConstraint(&w, c);
    w.WriteU32(m);
    w.WriteU32(static_cast<uint32_t>(bucket.size()));
    for (TupleId t : bucket) w.WriteU32(t);
  }
  w.WriteChecksum();
  Status saved = w.Close();
  if (!saved.ok()) {
    std::error_code ignored;
    fs::remove(tmp_path, ignored);
    return saved;
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp_path, ignored);
    return Status::IoError("cannot publish delta " + final_path + ": " +
                           ec.message());
  }

  Status rotated = RotateWal(seq);
  if (!rotated.ok()) return rotated;
  last_chain_seq_ = seq;
  ++deltas_since_full_;
  store->ClearDirty();
  // No pruning here: the chain needs every link back to its base, and the
  // WAL back to the oldest retained full snapshot. Both prune at the next
  // full checkpoint.
  return Status::Ok();
}

Status DurableEngine::CheckpointFull(uint64_t seq) {
  const std::string final_path = SnapshotPath(options_.dir, seq);
  const std::string tmp_path = final_path + ".tmp";

  // Snapshot to a temp name, then rename: readers either see the whole
  // CRC-valid file or none of it.
  Status saved = engine_ != nullptr
                     ? SaveEngineSnapshot(*engine_, tmp_path)
                     : SaveEngineSnapshot(*sharded_engine_, tmp_path);
  if (!saved.ok()) {
    std::error_code ignored;
    fs::remove(tmp_path, ignored);
    return saved;
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp_path, ignored);
    return Status::IoError("cannot publish snapshot " + final_path + ": " +
                           ec.message());
  }

  // Rotate the log: new ops land in a fresh segment starting at `seq`.
  Status rotated = RotateWal(seq);
  if (!rotated.ok()) return rotated;
  full_base_seq_ = seq;
  last_chain_seq_ = seq;
  deltas_since_full_ = 0;
  if (MuStore* store = mu_store(); store != nullptr) store->ClearDirty();

  // Prune. Snapshots: keep the newest keep_snapshots full ones. Deltas
  // chain off a full snapshot, so a delta older than the oldest retained
  // full belongs to a pruned base and goes with it (a chain's links are
  // always younger than their base and older than the next full). WAL
  // segments: segment i covers [start_i, start_{i+1}), so it stays while
  // any retained snapshot might need it for replay — i.e. while its end is
  // beyond the oldest retained snapshot's seq.
  std::vector<StoreFile> snapshots =
      ListSeqFiles(options_.dir, kSnapshotPrefix, kSnapshotSuffix);
  uint64_t oldest_kept = seq;
  if (snapshots.size() > static_cast<size_t>(options_.keep_snapshots)) {
    const size_t drop = snapshots.size() -
                        static_cast<size_t>(options_.keep_snapshots);
    for (size_t i = 0; i < drop; ++i) {
      std::error_code ignored;
      fs::remove(snapshots[i].path, ignored);
    }
    snapshots.erase(snapshots.begin(),
                    snapshots.begin() + static_cast<ptrdiff_t>(drop));
  }
  if (!snapshots.empty()) oldest_kept = snapshots.front().seq;

  for (const StoreFile& delta :
       ListSeqFiles(options_.dir, kDeltaPrefix, kDeltaSuffix)) {
    if (delta.seq < oldest_kept) {
      std::error_code ignored;
      fs::remove(delta.path, ignored);
    }
  }

  std::vector<StoreFile> wals =
      ListSeqFiles(options_.dir, kWalPrefix, kWalSuffix);
  for (size_t i = 0; i + 1 < wals.size(); ++i) {
    if (wals[i + 1].seq <= oldest_kept) {
      std::error_code ignored;
      fs::remove(wals[i].path, ignored);
    }
  }
  return Status::Ok();
}

}  // namespace persist
}  // namespace sitfact
