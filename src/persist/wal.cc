#include "persist/wal.h"

#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/crc32.h"

namespace sitfact {
namespace persist {

namespace {

constexpr char kMagic[8] = {'S', 'F', 'W', 'A', 'L', 'v', '1', '\0'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = sizeof(kMagic) + 4 + 8 + 4;

// Caps guarding length prefixes in a (possibly corrupt) record against
// garbage-sized allocations. A row of 16 dimensions and 16 measures is a few
// hundred bytes; 1 MiB leaves three orders of magnitude of headroom.
constexpr uint32_t kMaxRecordBytes = 1u << 20;
constexpr uint32_t kMaxFieldBytes = 1u << 16;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(v >> (8 * i)));
  }
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutRow(std::string* out, const Row& row) {
  PutU32(out, static_cast<uint32_t>(row.dimensions.size()));
  for (const std::string& d : row.dimensions) PutString(out, d);
  PutU32(out, static_cast<uint32_t>(row.measures.size()));
  for (double m : row.measures) PutF64(out, m);
}

/// Cursor over a record payload; any overrun or cap violation latches into
/// ok() so the caller checks once.
class PayloadCursor {
 public:
  PayloadCursor(const char* data, size_t len) : data_(data), len_(len) {}

  uint32_t GetU32() {
    if (!Take(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[pos_ - 4 + i]))
           << (8 * i);
    }
    return v;
  }

  uint64_t GetU64() {
    uint64_t lo = GetU32();
    uint64_t hi = GetU32();
    return lo | (hi << 32);
  }

  double GetF64() {
    uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string GetString() {
    uint32_t n = GetU32();
    if (n > kMaxFieldBytes || !Take(n)) {
      ok_ = false;
      return std::string();
    }
    return std::string(data_ + pos_ - n, n);
  }

  bool GetRow(Row* row) {
    uint32_t ndims = GetU32();
    if (ndims > static_cast<uint32_t>(kMaxDimensions)) ok_ = false;
    for (uint32_t i = 0; ok_ && i < ndims; ++i) {
      row->dimensions.push_back(GetString());
    }
    uint32_t nmeas = GetU32();
    if (nmeas > static_cast<uint32_t>(kMaxMeasures)) ok_ = false;
    for (uint32_t j = 0; ok_ && j < nmeas; ++j) {
      row->measures.push_back(GetF64());
    }
    return ok_;
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == len_; }

 private:
  bool Take(size_t n) {
    if (!ok_ || len_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const char* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                       uint64_t start_seq) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open WAL for write: " + path);
  }
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  PutU64(&header, start_seq);
  uint32_t crc = Crc32::Of(header.data() + sizeof(kMagic),
                           header.size() - sizeof(kMagic));
  PutU32(&header, crc);
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
      std::fflush(file) != 0) {
    std::fclose(file);
    return Status::IoError("cannot write WAL header: " + path);
  }
  return std::unique_ptr<WalWriter>(new WalWriter(file, path, start_seq));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WalWriter::Append(const WalOp& op) {
  if (file_ == nullptr) return Status::IoError("WAL already closed: " + path_);
  // Enforce the reader's caps at write time: a record the reader would
  // refuse to decode must never be acknowledged as durable (it would read
  // as corruption at recovery and silently drop every later op in the
  // segment with it).
  if (op.row.dimensions.size() > static_cast<size_t>(kMaxDimensions) ||
      op.row.measures.size() > static_cast<size_t>(kMaxMeasures)) {
    return Status::InvalidArgument("row arity exceeds the WAL format limits");
  }
  for (const std::string& d : op.row.dimensions) {
    if (d.size() > kMaxFieldBytes) {
      return Status::InvalidArgument(
          "dimension value exceeds the WAL field limit");
    }
  }
  std::string payload;
  payload.push_back(static_cast<char>(op.kind));
  PutU64(&payload, op.seq);
  switch (op.kind) {
    case WalOpKind::kAppend:
      PutRow(&payload, op.row);
      break;
    case WalOpKind::kRemove:
      PutU32(&payload, op.target);
      break;
    case WalOpKind::kUpdate:
      PutU32(&payload, op.target);
      PutRow(&payload, op.row);
      break;
  }
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("row exceeds the WAL record size limit");
  }
  std::string frame;
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32::Of(payload.data(), payload.size()));
  frame.append(payload);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    return Status::IoError("WAL write failed: " + path_);
  }
  return Status::Ok();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::IoError("WAL already closed: " + path_);
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IoError("WAL fsync failed: " + path_);
  }
  return Status::Ok();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("WAL close failed: " + path_);
  return Status::Ok();
}

StatusOr<WalContents> ReadWal(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open WAL for read: " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    data.append(buf, got);
  }
  bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) return Status::IoError("WAL read failed: " + path);

  if (data.size() < kHeaderBytes ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a sitfact WAL (bad or short header): " +
                              path);
  }
  {
    PayloadCursor header(data.data() + sizeof(kMagic),
                         kHeaderBytes - sizeof(kMagic));
    uint32_t version = header.GetU32();
    uint64_t start_seq = header.GetU64();
    uint32_t stored_crc = header.GetU32();
    uint32_t actual_crc =
        Crc32::Of(data.data() + sizeof(kMagic), kHeaderBytes - sizeof(kMagic) - 4);
    if (stored_crc != actual_crc) {
      return Status::Corruption("WAL header checksum mismatch: " + path);
    }
    if (version != kVersion) {
      return Status::Corruption("unsupported WAL version " +
                                std::to_string(version) + ": " + path);
    }
    WalContents out;
    out.start_seq = start_seq;

    size_t pos = kHeaderBytes;
    while (pos < data.size()) {
      if (data.size() - pos < 8) {
        out.clean_tail = false;
        out.tail_note = "torn record frame at byte " + std::to_string(pos);
        break;
      }
      PayloadCursor frame(data.data() + pos, 8);
      uint32_t len = frame.GetU32();
      uint32_t crc = frame.GetU32();
      // Minimum payload: kind tag (1) + seq (8).
      if (len < 9 || len > kMaxRecordBytes || data.size() - pos - 8 < len) {
        out.clean_tail = false;
        out.tail_note = "torn record body at byte " + std::to_string(pos);
        break;
      }
      const char* payload = data.data() + pos + 8;
      if (Crc32::Of(payload, len) != crc) {
        out.clean_tail = false;
        out.tail_note = "record checksum mismatch at byte " +
                        std::to_string(pos);
        break;
      }
      // First payload byte is the kind tag; the cursor is u32-granular, so
      // peel it off by hand.
      WalOp op;
      op.kind = static_cast<WalOpKind>(static_cast<uint8_t>(payload[0]));
      PayloadCursor rest(payload + 1, len - 1);
      op.seq = rest.GetU64();
      bool decoded = rest.ok();
      switch (op.kind) {
        case WalOpKind::kAppend:
          decoded = decoded && rest.GetRow(&op.row);
          break;
        case WalOpKind::kRemove:
          op.target = rest.GetU32();
          decoded = decoded && rest.ok();
          break;
        case WalOpKind::kUpdate:
          op.target = rest.GetU32();
          decoded = decoded && rest.ok() && rest.GetRow(&op.row);
          break;
        default:
          decoded = false;
      }
      if (!decoded || !rest.exhausted()) {
        out.clean_tail = false;
        out.tail_note = "undecodable record at byte " + std::to_string(pos);
        break;
      }
      out.ops.push_back(std::move(op));
      pos += 8 + len;
    }
    return out;
  }
}

}  // namespace persist
}  // namespace sitfact
