#ifndef SITFACT_PERSIST_DURABLE_ENGINE_H_
#define SITFACT_PERSIST_DURABLE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "exec/sharded_engine.h"
#include "persist/wal.h"
#include "relation/relation.h"

namespace sitfact {
namespace persist {

/// Knobs for a durable store; the engine-shape fields are consulted only
/// when `dir` is created (reopening takes the algorithm and truncation knobs
/// from the newest snapshot), except `num_shards`/`num_threads`, which pick
/// the backend every time — snapshots carry no shard geometry, so a store
/// written by the sequential engine reopens sharded and vice versa.
struct DurableOptions {
  /// Directory holding snapshot-<seq>.sfsnap and wal-<seq>.sfwal files.
  std::string dir;

  /// Auto-Checkpoint() after this many logged ops; 0 checkpoints only on
  /// explicit Checkpoint() calls.
  uint64_t checkpoint_every = 0;

  /// fsync the WAL after every op. Off, a kill loses nothing (records are
  /// fflush()ed) but a power failure may lose the ops the OS had not yet
  /// written back.
  bool sync_every_op = false;

  /// Snapshots retained after a checkpoint (≥ 1). With delta checkpoints
  /// this counts FULL snapshots; a pruned full snapshot takes its delta
  /// chain and the WAL files its ops live in along.
  int keep_snapshots = 2;

  /// Checkpoint as bucket-granular deltas (delta-<seq>.sfdelta) chained off
  /// the last full snapshot whenever the backend can — the algorithm's µ
  /// store tracks dirty buckets (memory/paged/segmented stores) and the
  /// algorithm restores from bucket dumps. A delta records only the buckets
  /// mutated since the previous checkpoint, so on append-heavy streams it
  /// is a small fraction of a full snapshot. Algorithms without that
  /// support (C-CSC, the baselines, the file-backed FS* stores) silently
  /// keep writing full snapshots.
  bool delta_checkpoints = true;

  /// Every Nth checkpoint writes a full snapshot instead of extending the
  /// delta chain, bounding both recovery time (count-only WAL replay spans
  /// at most N checkpoint intervals) and WAL retention. Values < 1 are
  /// treated as 1 (full snapshots only).
  int full_snapshot_every = 8;

  // --- creation-time engine shape ---
  std::string algorithm = "STopDown";
  DiscoveryOptions discovery;
  double tau = 0.0;
  bool rank_facts = true;
  /// > 0 selects the sharded backend with this K.
  int num_shards = 0;
  int num_threads = 0;
  /// Bucket-file directory for FSBottomUp / FSTopDown; empty defaults to
  /// `<dir>/fs_store` so the store stays self-contained.
  std::string file_store_dir;
  /// Recovery escape hatch forwarded to the snapshot loaders: rebuild
  /// non-restorable algorithm state (C-CSC, cross-policy restores) by
  /// replaying discovery over the restored relation.
  bool allow_replay_rebuild = false;
};

/// One numbered file (snapshot or WAL segment) of a durable store.
struct StoreFile {
  uint64_t seq = 0;
  std::string path;
};

/// The store's WAL segments / snapshots, ascending by sequence number.
/// Tooling (wal-dump) shares these with the recovery path so the two can
/// never disagree on what counts as a segment.
std::vector<StoreFile> ListWalSegments(const std::string& dir);
std::vector<StoreFile> ListSnapshots(const std::string& dir);
/// Delta checkpoints (delta-<seq>.sfdelta), named by the sequence number
/// their state is current through.
std::vector<StoreFile> ListDeltas(const std::string& dir);

/// What Open() had to do to get back to a consistent state.
struct RecoveryInfo {
  /// True when Open() created the store (empty dir).
  bool created = false;
  /// Sequence number of the snapshot that seeded the state.
  uint64_t snapshot_seq = 0;
  /// Delta checkpoints applied on top of the snapshot. Ops the chain covers
  /// are folded count-only (relation + context counter, no discovery); ops
  /// past the chain replay in full.
  uint64_t delta_chain = 0;
  uint64_t count_only_ops = 0;
  /// WAL ops replayed on top of it.
  uint64_t replayed_ops = 0;
  /// True when a torn or corrupt WAL tail was dropped; `note` says where.
  /// Ops past the drop point never happened as far as the store is
  /// concerned — the producer re-sends from next_seq() (at-least-once).
  bool tail_truncated = false;
  std::string note;
  /// Why the delta chain stopped short (corrupt/mismatched delta), if it did.
  std::string delta_note;
};

/// Crash-safe facade over a DiscoveryEngine or ShardedEngine
/// (docs/persistence.md).
///
/// Every mutation is framed into the write-ahead log before it touches the
/// engine; Checkpoint() serializes the full engine state (µ store, context
/// counter, relation, arrival cursor) into a CRC-checked snapshot, rotates
/// the log, and prunes files the snapshot made redundant. Open() recovers by
/// loading the newest valid snapshot and replaying the WAL tail, so a
/// process that dies between checkpoints resumes exactly where it stopped:
/// the restored engine produces tuple-for-tuple the reports an uninterrupted
/// run would have produced (tests/persist_recovery_test.cc is the
/// differential proof).
///
/// Single-writer like every engine here: one thread calls the mutating
/// methods at a time (FactFeed provides the queue when producers are many).
class DurableEngine {
 public:
  /// Creates the store (writing a genesis snapshot at seq 0) when `dir` has
  /// none, otherwise recovers. `schema` is required at creation and checked
  /// against the recovered relation otherwise (pass a default-constructed
  /// Schema to skip the check).
  static StatusOr<std::unique_ptr<DurableEngine>> Open(
      const DurableOptions& options, const Schema& schema);

  ~DurableEngine();

  DurableEngine(const DurableEngine&) = delete;
  DurableEngine& operator=(const DurableEngine&) = delete;

  /// Logs then applies one arrival. A returned error means the op is NOT
  /// durable (WAL write failed). The auto-checkpoint policy runs after the
  /// op; its failure never fails the op — the rows are durable in the WAL
  /// regardless — and is surfaced through checkpoint_status() instead.
  StatusOr<ArrivalReport> Append(const Row& row);

  /// Batch ingestion outcome: reports for every row that became durable,
  /// plus the first WAL error if logging stopped partway. The two travel
  /// together because a mid-batch disk failure still leaves a durable,
  /// applied prefix whose reports the caller must deliver — an at-least-once
  /// producer resumes past them, so they cannot be re-derived later.
  struct BatchResult {
    std::vector<ArrivalReport> reports;
    Status status;
  };

  /// Logs rows until the WAL rejects one, then applies the durable prefix —
  /// through the sharded engine's pipelined AppendBatch when that backend
  /// is active.
  BatchResult AppendBatch(std::span<const Row> rows);

  /// Logs then applies a deletion / an update (remove + re-append).
  Status Remove(TupleId t);
  StatusOr<ArrivalReport> Update(TupleId t, const Row& row);

  /// Snapshots the engine, rotates the WAL, prunes redundant files.
  Status Checkpoint();

  /// Outcome of the most recent auto-checkpoint (Ok before the first one).
  /// A failure here is advisory — every op is still WAL-durable, recovery
  /// just replays a longer tail — and the policy retries on the next op.
  const Status& checkpoint_status() const { return checkpoint_status_; }

  /// Global index the next logged op will get; after recovery this is where
  /// an at-least-once producer resumes its stream.
  uint64_t next_seq() const { return next_seq_; }
  uint64_t ops_since_checkpoint() const { return next_seq_ - checkpoint_seq_; }
  const RecoveryInfo& recovery() const { return recovery_; }

  Relation& relation() { return *relation_; }
  bool sharded() const { return sharded_engine_ != nullptr; }
  /// Exactly one backend is non-null.
  DiscoveryEngine* engine() { return engine_.get(); }
  ShardedEngine* sharded_engine() { return sharded_engine_.get(); }
  /// Label for logs: the discoverer name, e.g. "STopDown" or "Sharded".
  std::string algorithm() const;

 private:
  DurableEngine() = default;

  Status Log(WalOp op);
  Status CheckRowArity(const Row& row) const;
  ArrivalReport ApplyAppend(const Row& row);
  Status ApplyRemove(TupleId t);
  StatusOr<ArrivalReport> ApplyUpdate(TupleId t, const Row& row);
  /// Count-only replay (delta recovery): folds the op into the relation and
  /// the context counter without running discovery — the µ buckets for this
  /// span come from the delta chain instead.
  Status ApplyCountOnly(const WalOp& op);
  void MaybeAutoCheckpoint();

  /// The active engine's µ store (nullptr for store-less baselines) and
  /// storage policy.
  MuStore* mu_store();
  StoragePolicy storage_policy();
  /// Turns on bucket dirty tracking when delta checkpoints are enabled and
  /// the backend supports them (dirty-tracking store + dump-restorable
  /// algorithm). Checkpoint() keys off store->dirty_tracking(), so this is
  /// the single eligibility decision.
  void EnableDeltaTrackingIfEligible();

  Status CheckpointFull(uint64_t seq);
  Status CheckpointDelta(uint64_t seq);
  /// Post-checkpoint WAL rotation shared by both checkpoint kinds.
  Status RotateWal(uint64_t seq);

  DurableOptions options_;
  std::unique_ptr<Relation> relation_;
  std::unique_ptr<DiscoveryEngine> engine_;
  std::unique_ptr<ShardedEngine> sharded_engine_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t next_seq_ = 0;        // next op's sequence number
  uint64_t checkpoint_seq_ = 0;  // seq as of the last durable checkpoint
  uint64_t full_base_seq_ = 0;   // seq of the newest durable FULL snapshot
  uint64_t last_chain_seq_ = 0;  // newest checkpoint (full or delta) seq
  int deltas_since_full_ = 0;    // chain length since full_base_seq_
  Status checkpoint_status_;     // last auto-checkpoint outcome
  Status wal_status_;            // first WAL failure; poisons further ops
  RecoveryInfo recovery_;
};

}  // namespace persist
}  // namespace sitfact

#endif  // SITFACT_PERSIST_DURABLE_ENGINE_H_
