#include "relation/measure_store.h"

#include <cstring>
#include <new>

#include "common/logging.h"

namespace sitfact {

namespace {

// One cache line; also the widest vector register in current mainstream
// hardware, so a column pass never splits its first load.
constexpr size_t kArenaAlign = 64;
constexpr size_t kInitialStride = 64;  // doubles per column at first Append

double* AllocateArena(size_t doubles) {
  return static_cast<double*>(::operator new[](
      doubles * sizeof(double), std::align_val_t(kArenaAlign)));
}

}  // namespace

void MeasureColumnStore::ArenaDeleter::operator()(double* p) const {
  ::operator delete[](p, std::align_val_t(kArenaAlign));
}

MeasureColumnStore::MeasureColumnStore(const Schema& schema)
    : num_measures_(schema.num_measures()) {
  SITFACT_CHECK(num_measures_ >= 0 && num_measures_ <= kMaxMeasures);
  for (int j = 0; j < num_measures_; ++j) {
    if (schema.measure(j).direction == Direction::kSmallerIsBetter) {
      negate_mask_ |= (1u << j);
    }
  }
}

void MeasureColumnStore::Grow(size_t min_capacity) {
  size_t new_stride = stride_ == 0 ? kInitialStride : stride_ * 2;
  while (new_stride < min_capacity) new_stride *= 2;
  std::unique_ptr<double[], ArenaDeleter> grown(
      AllocateArena(2 * static_cast<size_t>(num_measures_) * new_stride));
  if (size_ > 0) {
    for (int c = 0; c < 2 * num_measures_; ++c) {
      std::memcpy(grown.get() + static_cast<size_t>(c) * new_stride,
                  arena_.get() + static_cast<size_t>(c) * stride_,
                  size_ * sizeof(double));
    }
  }
  arena_ = std::move(grown);
  stride_ = new_stride;
}

void MeasureColumnStore::Append(const double* raw_values) {
  if (size_ == stride_) Grow(size_ + 1);
  for (int j = 0; j < num_measures_; ++j) {
    double raw = raw_values[j];
    double* base = arena_.get();
    base[static_cast<size_t>(num_measures_ + j) * stride_ + size_] = raw;
    base[static_cast<size_t>(j) * stride_ + size_] =
        (negate_mask_ >> j) & 1u ? -raw : raw;
  }
  ++size_;
}

}  // namespace sitfact
