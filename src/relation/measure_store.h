#ifndef SITFACT_RELATION_MEASURE_STORE_H_
#define SITFACT_RELATION_MEASURE_STORE_H_

#include <cstddef>
#include <memory>

#include "common/types.h"
#include "relation/schema.h"

namespace sitfact {

/// Structure-of-arrays storage for the measure attributes of a Relation.
///
/// Each measure is stored twice — the raw, as-ingested value (display /
/// narration) and a direction-adjusted *key* (negated when the attribute is
/// smaller-is-better) so dominance is uniformly "larger key is better".
/// All 2·m columns live in one cache-line-aligned arena with a shared
/// stride, key columns first: the batched dominance kernel
/// (skyline/dominance_batch.h) streams a key column for a whole block of
/// tuples with unit stride, while the per-tuple row view (`raw()`/`key()`)
/// stays available for existing callers.
///
/// Contract (tested by relation_columns_test): after any Append sequence,
/// `key_column(j)[t] == key(j, t)` and `raw_column(j)[t] == raw(j, t)` for
/// every live and tombstoned tuple — the columnar and row views are the
/// same memory.
class MeasureColumnStore {
 public:
  /// Captures the measure count and directions; the schema object itself is
  /// not retained.
  explicit MeasureColumnStore(const Schema& schema);

  MeasureColumnStore(MeasureColumnStore&&) = default;
  MeasureColumnStore& operator=(MeasureColumnStore&&) = default;
  MeasureColumnStore(const MeasureColumnStore&) = delete;
  MeasureColumnStore& operator=(const MeasureColumnStore&) = delete;

  int num_measures() const { return num_measures_; }
  size_t size() const { return size_; }

  /// Appends one row of `num_measures()` raw values, deriving the keys.
  void Append(const double* raw_values);

  /// Row view.
  double raw(int j, TupleId t) const { return raw_column(j)[t]; }
  double key(int j, TupleId t) const { return key_column(j)[t]; }

  /// Columnar view: contiguous arrays of `size()` values, valid until the
  /// next Append (growth may reallocate the arena).
  const double* key_column(int j) const {
    return arena_.get() + static_cast<size_t>(j) * stride_;
  }
  const double* raw_column(int j) const {
    return arena_.get() +
           (static_cast<size_t>(num_measures_) + static_cast<size_t>(j)) *
               stride_;
  }

  size_t ApproxMemoryBytes() const {
    return 2 * static_cast<size_t>(num_measures_) * stride_ * sizeof(double);
  }

 private:
  void Grow(size_t min_capacity);

  struct ArenaDeleter {
    void operator()(double* p) const;
  };

  int num_measures_ = 0;
  uint32_t negate_mask_ = 0;  // bit j set: measure j is smaller-is-better
  size_t size_ = 0;
  size_t stride_ = 0;  // per-column capacity, in doubles
  std::unique_ptr<double[], ArenaDeleter> arena_;
};

}  // namespace sitfact

#endif  // SITFACT_RELATION_MEASURE_STORE_H_
