#include "relation/dictionary.h"

#include "common/logging.h"

namespace sitfact {

ValueId Dictionary::Encode(std::string_view value) {
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  auto id = static_cast<ValueId>(values_.size());
  SITFACT_CHECK_MSG(id != kUnboundValue, "dictionary overflow");
  values_.emplace_back(value);
  index_.emplace(values_.back(), id);
  return id;
}

ValueId Dictionary::Lookup(std::string_view value) const {
  auto it = index_.find(std::string(value));
  return it == index_.end() ? kUnboundValue : it->second;
}

const std::string& Dictionary::Decode(ValueId id) const {
  SITFACT_CHECK_MSG(id < values_.size(), "ValueId out of range");
  return values_[id];
}

size_t Dictionary::ApproxMemoryBytes() const {
  size_t bytes = values_.capacity() * sizeof(std::string);
  for (const auto& v : values_) bytes += v.capacity();
  bytes += index_.size() *
           (sizeof(std::string) + sizeof(ValueId) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace sitfact
