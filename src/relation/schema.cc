#include "relation/schema.h"

#include <unordered_set>
#include <utility>

#include "common/bits.h"

namespace sitfact {

Schema::Schema(std::vector<DimensionAttribute> dimensions,
               std::vector<MeasureAttribute> measures)
    : dimensions_(std::move(dimensions)), measures_(std::move(measures)) {}

StatusOr<Schema> Schema::Create(std::vector<DimensionAttribute> dimensions,
                                std::vector<MeasureAttribute> measures) {
  if (dimensions.empty()) {
    return Status::InvalidArgument("schema needs at least one dimension");
  }
  if (measures.empty()) {
    return Status::InvalidArgument("schema needs at least one measure");
  }
  if (static_cast<int>(dimensions.size()) > kMaxDimensions) {
    return Status::InvalidArgument("too many dimension attributes");
  }
  if (static_cast<int>(measures.size()) > kMaxMeasures) {
    return Status::InvalidArgument("too many measure attributes");
  }
  std::unordered_set<std::string> seen;
  for (const auto& d : dimensions) {
    if (d.name.empty()) {
      return Status::InvalidArgument("empty dimension name");
    }
    if (!seen.insert(d.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + d.name);
    }
  }
  for (const auto& m : measures) {
    if (m.name.empty()) {
      return Status::InvalidArgument("empty measure name");
    }
    if (!seen.insert(m.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + m.name);
    }
  }
  return Schema(std::move(dimensions), std::move(measures));
}

int Schema::DimensionIndex(const std::string& name) const {
  for (int i = 0; i < num_dimensions(); ++i) {
    if (dimensions_[i].name == name) return i;
  }
  return -1;
}

int Schema::MeasureIndex(const std::string& name) const {
  for (int j = 0; j < num_measures(); ++j) {
    if (measures_[j].name == name) return j;
  }
  return -1;
}

DimMask Schema::AllDimensionsMask() const {
  return FullMask(num_dimensions());
}

MeasureMask Schema::FullMeasureMask() const { return FullMask(num_measures()); }

}  // namespace sitfact
