#ifndef SITFACT_RELATION_DICTIONARY_H_
#define SITFACT_RELATION_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace sitfact {

/// Bidirectional string <-> ValueId dictionary used to encode one dimension
/// attribute. Ids are dense, assigned in first-seen order, and never reach
/// kUnboundValue (the wildcard sentinel).
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: a dictionary anchors ValueIds stored elsewhere,
  // so accidental copies are almost always bugs.
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Returns the id for `value`, inserting it if new.
  ValueId Encode(std::string_view value);

  /// Returns the id for `value`, or kUnboundValue if absent.
  ValueId Lookup(std::string_view value) const;

  /// String for `id`; id must be < size().
  const std::string& Decode(ValueId id) const;

  size_t size() const { return values_.size(); }

  /// Approximate heap footprint, for memory accounting benches.
  size_t ApproxMemoryBytes() const;

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, ValueId> index_;
};

}  // namespace sitfact

#endif  // SITFACT_RELATION_DICTIONARY_H_
