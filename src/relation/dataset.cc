#include "relation/dataset.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/csv.h"

namespace sitfact {

StatusOr<Dataset> Dataset::Project(
    const std::vector<std::string>& dimension_names,
    const std::vector<std::string>& measure_names) const {
  std::vector<int> dim_idx;
  std::vector<int> mea_idx;
  std::vector<DimensionAttribute> dims;
  std::vector<MeasureAttribute> meas;
  for (const auto& name : dimension_names) {
    int i = schema_.DimensionIndex(name);
    if (i < 0) return Status::NotFound("dimension attribute: " + name);
    dim_idx.push_back(i);
    dims.push_back(schema_.dimension(i));
  }
  for (const auto& name : measure_names) {
    int j = schema_.MeasureIndex(name);
    if (j < 0) return Status::NotFound("measure attribute: " + name);
    mea_idx.push_back(j);
    meas.push_back(schema_.measure(j));
  }
  auto schema_or = Schema::Create(std::move(dims), std::move(meas));
  if (!schema_or.ok()) return schema_or.status();
  Dataset out(std::move(schema_or).value());
  for (const Row& r : rows_) {
    Row pr;
    pr.dimensions.reserve(dim_idx.size());
    pr.measures.reserve(mea_idx.size());
    for (int i : dim_idx) pr.dimensions.push_back(r.dimensions[i]);
    for (int j : mea_idx) pr.measures.push_back(r.measures[j]);
    out.Add(std::move(pr));
  }
  return out;
}

Status Dataset::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  bool first = true;
  for (const auto& d : schema_.dimensions()) {
    if (!first) out << ',';
    out << CsvQuote(d.name);
    first = false;
  }
  for (const auto& m : schema_.measures()) {
    out << ',' << CsvQuote(m.name);
  }
  out << '\n';
  for (const Row& r : rows_) {
    first = true;
    for (const auto& v : r.dimensions) {
      if (!first) out << ',';
      out << CsvQuote(v);
      first = false;
    }
    for (double v : r.measures) {
      out << ',' << v;
    }
    out << '\n';
  }
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Dataset> Dataset::ReadCsv(const std::string& path, Schema schema) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::Corruption("missing header");
  Dataset out(std::move(schema));
  const Schema& s = out.schema();
  size_t expected =
      static_cast<size_t>(s.num_dimensions()) + s.num_measures();
  std::vector<std::string> fields;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Status st = SplitCsvLine(line, &fields);
    if (!st.ok()) return st;
    if (fields.size() != expected) {
      return Status::Corruption("arity mismatch at line " +
                                std::to_string(line_no));
    }
    Row r;
    for (int i = 0; i < s.num_dimensions(); ++i) {
      r.dimensions.push_back(fields[i]);
    }
    for (int j = 0; j < s.num_measures(); ++j) {
      const std::string& f = fields[s.num_dimensions() + j];
      char* end = nullptr;
      double v = std::strtod(f.c_str(), &end);
      if (end == f.c_str()) {
        return Status::Corruption("bad measure value '" + f + "' at line " +
                                  std::to_string(line_no));
      }
      r.measures.push_back(v);
    }
    out.Add(std::move(r));
  }
  return out;
}

Relation MakeRelation(const Dataset& dataset) {
  return Relation(dataset.schema());
}

}  // namespace sitfact
