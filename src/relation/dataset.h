#ifndef SITFACT_RELATION_DATASET_H_
#define SITFACT_RELATION_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"
#include "relation/schema.h"

namespace sitfact {

/// A raw dataset: a wide schema (all dimension and measure attributes the
/// generator produced) plus rows. Experiments project a Dataset onto a named
/// subset of attributes (Tables V and VI pick different subsets per d / m, so
/// this is a named projection rather than a prefix).
class Dataset {
 public:
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  void Add(Row row) { rows_.push_back(std::move(row)); }
  size_t size() const { return rows_.size(); }

  /// Projects onto the named attributes (order defines the projected schema)
  /// and returns the projected rows; feed them to a Relation one at a time to
  /// drive incremental discovery.
  StatusOr<Dataset> Project(const std::vector<std::string>& dimension_names,
                            const std::vector<std::string>& measure_names)
      const;

  /// Writes the dataset as CSV (header + rows). Dimension values are quoted
  /// only when needed.
  Status WriteCsv(const std::string& path) const;

  /// Reads a CSV produced by WriteCsv given the schema (column order must
  /// match: dimensions then measures).
  static StatusOr<Dataset> ReadCsv(const std::string& path, Schema schema);

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

/// Builds an empty Relation with `dataset`'s schema; convenience for tests.
Relation MakeRelation(const Dataset& dataset);

}  // namespace sitfact

#endif  // SITFACT_RELATION_DATASET_H_
