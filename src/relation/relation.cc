#include "relation/relation.h"

#include <utility>

#include "common/logging.h"

namespace sitfact {

Relation::Relation(Schema schema)
    : schema_(std::move(schema)), measures_(schema_) {
  int nd = schema_.num_dimensions();
  dicts_.resize(nd);
  dim_cols_.resize(nd);
}

TupleId Relation::Append(const Row& row) {
  SITFACT_CHECK(static_cast<int>(row.dimensions.size()) ==
                schema_.num_dimensions());
  SITFACT_CHECK(static_cast<int>(row.measures.size()) ==
                schema_.num_measures());
  std::vector<ValueId> dims(row.dimensions.size());
  for (size_t i = 0; i < row.dimensions.size(); ++i) {
    dims[i] = dicts_[i].Encode(row.dimensions[i]);
  }
  return AppendEncoded(dims, row.measures);
}

StatusOr<TupleId> Relation::AppendChecked(const Row& row) {
  if (static_cast<int>(row.dimensions.size()) != schema_.num_dimensions()) {
    return Status::InvalidArgument("row dimension arity mismatch");
  }
  if (static_cast<int>(row.measures.size()) != schema_.num_measures()) {
    return Status::InvalidArgument("row measure arity mismatch");
  }
  return Append(row);
}

TupleId Relation::AppendEncoded(const std::vector<ValueId>& dims,
                                const std::vector<double>& measures) {
  SITFACT_CHECK(static_cast<int>(dims.size()) == schema_.num_dimensions());
  SITFACT_CHECK(static_cast<int>(measures.size()) == schema_.num_measures());
  for (int i = 0; i < schema_.num_dimensions(); ++i) {
    SITFACT_DCHECK(dims[i] < dicts_[i].size());
    dim_cols_[i].push_back(dims[i]);
  }
  measures_.Append(measures.data());
  return static_cast<TupleId>(num_tuples_++);
}

void Relation::MarkDeleted(TupleId t) {
  SITFACT_CHECK(t < num_tuples_);
  if (deleted_.size() < num_tuples_) deleted_.resize(num_tuples_, 0);
  if (!deleted_[t]) {
    deleted_[t] = 1;
    ++num_deleted_;
  }
}

DimMask Relation::AgreeMask(TupleId a, TupleId b) const {
  DimMask mask = 0;
  for (int i = 0; i < schema_.num_dimensions(); ++i) {
    if (dim_cols_[i][a] == dim_cols_[i][b]) mask |= (1u << i);
  }
  return mask;
}

Relation::MeasurePartition Relation::Partition(TupleId t,
                                               TupleId other) const {
  MeasurePartition p;
  for (int j = 0; j < schema_.num_measures(); ++j) {
    const double* col = measures_.key_column(j);
    double tv = col[t];
    double ov = col[other];
    if (tv < ov) {
      p.worse |= (1u << j);
    } else if (tv > ov) {
      p.better |= (1u << j);
    }
  }
  return p;
}

size_t Relation::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& c : dim_cols_) bytes += c.capacity() * sizeof(ValueId);
  bytes += measures_.ApproxMemoryBytes();
  for (const auto& d : dicts_) bytes += d.ApproxMemoryBytes();
  return bytes;
}

}  // namespace sitfact
