#ifndef SITFACT_RELATION_RELATION_H_
#define SITFACT_RELATION_RELATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "relation/dictionary.h"
#include "relation/measure_store.h"
#include "relation/schema.h"

namespace sitfact {

/// One input row before encoding: dimension values as strings, measures as
/// doubles, in schema order.
struct Row {
  std::vector<std::string> dimensions;
  std::vector<double> measures;
};

/// Append-only columnar relation R(D; M) (the paper's ever-growing table).
///
/// Dimensions are dictionary-encoded per attribute. Measures live in a
/// structure-of-arrays MeasureColumnStore: the raw value (for display /
/// narration) and a direction-adjusted *key* (negated when the attribute is
/// smaller-is-better) so that dominance is uniformly "larger key is better"
/// on the hot path. Both a per-tuple row view and contiguous per-attribute
/// column views are exposed; the batched dominance kernel
/// (skyline/dominance_batch.h) consumes the latter.
class Relation {
 public:
  explicit Relation(Schema schema);

  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const Schema& schema() const { return schema_; }
  TupleId size() const { return static_cast<TupleId>(num_tuples_); }

  /// Appends a row; returns its TupleId. CHECK-fails on arity mismatch (use
  /// AppendChecked for untrusted input).
  TupleId Append(const Row& row);
  StatusOr<TupleId> AppendChecked(const Row& row);

  /// Appends a pre-encoded row (generator fast path). `dims` are ValueIds
  /// that must have been produced by this relation's dictionaries.
  TupleId AppendEncoded(const std::vector<ValueId>& dims,
                        const std::vector<double>& measures);

  /// Tombstones tuple `t` (deletion extension — the paper's future work).
  /// The row's data stays readable (repair logic needs it) but every
  /// live-data scan skips it. Idempotent.
  void MarkDeleted(TupleId t);
  bool IsDeleted(TupleId t) const {
    return t < deleted_.size() && deleted_[t] != 0;
  }
  /// Number of non-deleted tuples.
  TupleId live_size() const {
    return static_cast<TupleId>(num_tuples_ - num_deleted_);
  }

  /// Dictionary-encoded value of dimension `dim` of tuple `t`.
  ValueId dim(TupleId t, int d) const { return dim_cols_[d][t]; }

  /// Raw (as-ingested) measure value.
  double measure(TupleId t, int j) const { return measures_.raw(j, t); }

  /// Direction-adjusted measure key: larger is always better.
  double measure_key(TupleId t, int j) const { return measures_.key(j, t); }

  /// Columnar views — contiguous arrays of size() entries indexed by
  /// TupleId, valid until the next Append. The SoA/row-view consistency
  /// contract (column[t] == the row accessor for every t, live or deleted)
  /// is pinned by relation_columns_test.
  const double* key_column(int j) const { return measures_.key_column(j); }
  const double* raw_column(int j) const { return measures_.raw_column(j); }
  const ValueId* dim_column(int d) const { return dim_cols_[d].data(); }

  /// String form of dimension `d` of tuple `t`.
  const std::string& DimString(TupleId t, int d) const {
    return dicts_[d].Decode(dim(t, d));
  }

  Dictionary& dictionary(int d) { return dicts_[d]; }
  const Dictionary& dictionary(int d) const { return dicts_[d]; }

  /// Agreement mask between two tuples: bit i set iff a.d_i == b.d_i.
  /// This is the bound set of ⊥(C^{a,b}), the bottom of the lattice
  /// intersection (Def. 8).
  DimMask AgreeMask(TupleId a, TupleId b) const;

  /// Measure-space partition of Prop. 4 from the perspective of tuple `t`
  /// against tuple `other`:
  ///   worse  = {j : t worse than other on j}   (the paper's M<)
  ///   better = {j : t better than other on j}  (the paper's M>)
  /// `t ≺_M other  ⇔  (M ∩ worse) != 0 && (M ∩ better) == 0`.
  struct MeasurePartition {
    MeasureMask worse = 0;
    MeasureMask better = 0;
  };
  MeasurePartition Partition(TupleId t, TupleId other) const;

  /// Approximate heap footprint of the relation columns + dictionaries.
  size_t ApproxMemoryBytes() const;

 private:
  Schema schema_;
  size_t num_tuples_ = 0;
  size_t num_deleted_ = 0;
  std::vector<uint8_t> deleted_;               // tombstones, lazily grown
  std::vector<Dictionary> dicts_;              // one per dimension
  std::vector<std::vector<ValueId>> dim_cols_;  // [dim][tuple]
  MeasureColumnStore measures_;                 // SoA raw + key columns
};

}  // namespace sitfact

#endif  // SITFACT_RELATION_RELATION_H_
