#ifndef SITFACT_RELATION_SCHEMA_H_
#define SITFACT_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace sitfact {

/// Preference direction of a measure attribute (Def. 2 allows either; e.g.
/// NBA `points` is larger-is-better while `fouls` is smaller-is-better).
enum class Direction {
  kLargerIsBetter,
  kSmallerIsBetter,
};

struct DimensionAttribute {
  std::string name;
};

struct MeasureAttribute {
  std::string name;
  Direction direction = Direction::kLargerIsBetter;
};

/// Schema R(D; M): ordered dimension attributes (on which constraints are
/// specified) and ordered measure attributes (on which dominance is defined).
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<DimensionAttribute> dimensions,
         std::vector<MeasureAttribute> measures);

  /// Validating factory: rejects empty/duplicate names and attribute counts
  /// beyond kMaxDimensions / kMaxMeasures.
  static StatusOr<Schema> Create(std::vector<DimensionAttribute> dimensions,
                                 std::vector<MeasureAttribute> measures);

  int num_dimensions() const { return static_cast<int>(dimensions_.size()); }
  int num_measures() const { return static_cast<int>(measures_.size()); }

  const DimensionAttribute& dimension(int i) const { return dimensions_[i]; }
  const MeasureAttribute& measure(int j) const { return measures_[j]; }

  const std::vector<DimensionAttribute>& dimensions() const {
    return dimensions_;
  }
  const std::vector<MeasureAttribute>& measures() const { return measures_; }

  /// Index of the named dimension attribute, or -1.
  int DimensionIndex(const std::string& name) const;
  /// Index of the named measure attribute, or -1.
  int MeasureIndex(const std::string& name) const;

  /// Mask covering every dimension attribute.
  DimMask AllDimensionsMask() const;
  /// Mask covering every measure attribute (the full space M).
  MeasureMask FullMeasureMask() const;

 private:
  std::vector<DimensionAttribute> dimensions_;
  std::vector<MeasureAttribute> measures_;
};

}  // namespace sitfact

#endif  // SITFACT_RELATION_SCHEMA_H_
