#include "csc/ccsc_discoverer.h"

#include <algorithm>
#include <utility>

#include "lattice/constraint_enumerator.h"

namespace sitfact {

CcscDiscoverer::CcscDiscoverer(const Relation* relation,
                               const DiscoveryOptions& options)
    : Discoverer(relation, options),
      masks_(MasksByAscendingBound(relation->schema().num_dimensions(),
                                   max_bound_)) {}

CcscDiscoverer::~CcscDiscoverer() = default;

void CcscDiscoverer::Discover(TupleId t, std::vector<SkylineFact>* facts) {
  ++stats_.arrivals;
  const Relation& r = *relation_;
  // One partition memo for the whole arrival: every context that compares t
  // against the same history tuple reuses the first context's partition.
  arrival_memo_.BeginArrival(r, t);
  for (DimMask mask : masks_) {
    Constraint c = Constraint::ForTuple(r, t, mask);
    auto [it, inserted] = states_.try_emplace(c, nullptr);
    if (inserted) {
      it->second = std::make_unique<ContextState>(&r, &universe_);
    }
    ContextState& st = *it->second;
    st.index.Insert(t);
    uint64_t before = st.cube.stored_count();
    sky_masks_scratch_.clear();
    st.cube.Insert(r, t, &sky_masks_scratch_, &stats_.comparisons,
                   &arrival_memo_, &repair_memo_);
    stored_total_ += st.cube.stored_count() - before;
    // Membership per subspace is read directly off the update's skyline
    // set. The pre-index adaptation reproduced the paper's "overkill" — a
    // full CSC skyline query per subspace, with membership read off the
    // result — but both formulations answer the same question ("does any
    // context member dominate t in M?") and are pinned tuple-for-tuple
    // identical by the differential tests; what the rebuild removes is the
    // per-subspace physical rescan, not any pruning C-CSC isn't entitled
    // to. The traversal counter keeps its meaning: one (context, subspace)
    // visit per universe mask.
    stats_.constraints_traversed += universe_.masks().size();
    for (MeasureMask m : sky_masks_scratch_) {
      facts->push_back(SkylineFact{c, m});
    }
  }
}

std::unique_ptr<CcscDiscoverer::ContextState> CcscDiscoverer::RebuildState(
    const std::vector<TupleId>& members) {
  const Relation& r = *relation_;
  auto st = std::make_unique<ContextState>(&r, &universe_);
  for (TupleId u : members) {
    st->index.Insert(u);
    arrival_memo_.BeginArrival(r, u);
    sky_masks_scratch_.clear();
    st->cube.Insert(r, u, &sky_masks_scratch_, &stats_.comparisons,
                    &arrival_memo_, &repair_memo_);
  }
  return st;
}

Status CcscDiscoverer::Remove(TupleId t) {
  const Relation& r = *relation_;
  if (t >= r.size()) {
    return Status::InvalidArgument("no such tuple");
  }
  if (!r.IsDeleted(t)) {
    return Status::InvalidArgument(
        "tuple must be tombstoned (Relation::MarkDeleted) before Remove");
  }
  for (DimMask mask : masks_) {
    auto it = states_.find(Constraint::ForTuple(r, t, mask));
    if (it == states_.end()) continue;
    ContextState& st = *it->second;
    const std::vector<TupleId>& members = st.index.members();
    if (std::find(members.begin(), members.end(), t) == members.end()) {
      continue;
    }
    std::vector<TupleId> remaining;
    remaining.reserve(members.size() - 1);
    for (TupleId u : members) {
      if (u != t) remaining.push_back(u);
    }
    stored_total_ -= st.cube.stored_count();
    if (remaining.empty()) {
      states_.erase(it);
      continue;
    }
    it->second = RebuildState(remaining);
    stored_total_ += it->second->cube.stored_count();
  }
  return Status::Ok();
}

size_t CcscDiscoverer::ApproxMemoryBytes() const {
  size_t bytes = arrival_memo_.ApproxMemoryBytes() +
                 repair_memo_.ApproxMemoryBytes();
  for (const auto& [key, st] : states_) {
    bytes += sizeof(Constraint) + 3 * sizeof(void*);
    bytes += sizeof(ContextState);
    bytes += st->cube.ApproxMemoryBytes();
    bytes += st->index.ApproxMemoryBytes();
  }
  return bytes;
}

const CompressedSkycube* CcscDiscoverer::cube(const Constraint& c) const {
  auto it = states_.find(c);
  return it == states_.end() ? nullptr : &it->second->cube;
}

}  // namespace sitfact
