#include "csc/ccsc_discoverer.h"

#include <algorithm>

#include "lattice/constraint_enumerator.h"

namespace sitfact {

CcscDiscoverer::CcscDiscoverer(const Relation* relation,
                               const DiscoveryOptions& options)
    : Discoverer(relation, options),
      masks_(MasksByAscendingBound(relation->schema().num_dimensions(),
                                   max_bound_)) {}

void CcscDiscoverer::Discover(TupleId t, std::vector<SkylineFact>* facts) {
  ++stats_.arrivals;
  const Relation& r = *relation_;
  for (DimMask mask : masks_) {
    Constraint c = Constraint::ForTuple(r, t, mask);
    auto [it, inserted] =
        cubes_.try_emplace(c, &universe_, /*share_partitions=*/false);
    CompressedSkycube& cube = it->second;
    uint64_t before = cube.stored_count();
    sky_masks_scratch_.clear();
    cube.Insert(r, t, &sky_masks_scratch_, &stats_.comparisons);
    stored_total_ += cube.stored_count() - before;
    // The CSC update just computed t's memberships as a side effect, but the
    // adaptation the paper describes (Sec. II) does not get them that way:
    // "the adaptation needs to run their query algorithm to find the skyline
    // tuples for all measure subspaces, in order to determine if t is one of
    // the skyline tuples. This is clearly an overkill." We reproduce that
    // overkill faithfully — one full CSC skyline query per measure subspace
    // per context, with membership read off the result — because C-CSC is
    // measured as a competitor and this per-subspace query cost IS its
    // handicap: unlike STopDown it cannot share any of this work across
    // subspaces, let alone across contexts.
    for (MeasureMask m : universe_.masks()) {
      ++stats_.constraints_traversed;
      cube.QuerySkyline(r, m, &stats_.comparisons, &skyline_scratch_);
      if (std::find(skyline_scratch_.begin(), skyline_scratch_.end(), t) !=
          skyline_scratch_.end()) {
        facts->push_back(SkylineFact{c, m});
      }
    }
  }
}

size_t CcscDiscoverer::ApproxMemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [key, cube] : cubes_) {
    bytes += sizeof(Constraint) + 3 * sizeof(void*);
    bytes += sizeof(CompressedSkycube);
    bytes += cube.ApproxMemoryBytes();
  }
  return bytes;
}

const CompressedSkycube* CcscDiscoverer::cube(const Constraint& c) const {
  auto it = cubes_.find(c);
  return it == cubes_.end() ? nullptr : &it->second;
}

}  // namespace sitfact
