#ifndef SITFACT_CSC_CCSC_DISCOVERER_H_
#define SITFACT_CSC_CCSC_DISCOVERER_H_

#include <unordered_map>
#include <vector>

#include "core/discoverer.h"
#include "csc/compressed_skycube.h"
#include "lattice/constraint.h"

namespace sitfact {

/// C-CSC: the paper's adaptation of the Compressed SkyCube to situational-
/// fact discovery (Sec. II / Sec. VI). One CSC is maintained per context
/// ever instantiated; a new tuple updates the CSC of every constraint it
/// satisfies, and the update doubles as the membership test for every
/// measure subspace.
///
/// This is the paper's strongest competitor and loses to BottomUp/TopDown by
/// about an order of magnitude for the reasons the paper gives: it must run
/// skyline recomputation over stored tuples per context (it cannot prune
/// constraints — CSCs of different contexts share nothing), and its update
/// logic maintains minimum subspaces rather than answering the one
/// membership question discovery needs.
class CcscDiscoverer : public Discoverer {
 public:
  CcscDiscoverer(const Relation* relation, const DiscoveryOptions& options);

  std::string_view name() const override { return "C-CSC"; }
  void Discover(TupleId t, std::vector<SkylineFact>* facts) override;

  size_t ApproxMemoryBytes() const override;
  uint64_t StoredTupleCount() const override { return stored_total_; }

  /// The per-context compressed skycubes are private state that cannot be
  /// reconstructed from a relation snapshot without a full replay.
  bool SupportsSnapshotRestore() const override { return false; }

  /// The cube of one context (tests/inspection); nullptr if absent.
  const CompressedSkycube* cube(const Constraint& c) const;

 private:
  std::vector<DimMask> masks_;
  std::unordered_map<Constraint, CompressedSkycube, ConstraintHash> cubes_;
  uint64_t stored_total_ = 0;
  std::vector<MeasureMask> sky_masks_scratch_;
  std::vector<TupleId> skyline_scratch_;
};

}  // namespace sitfact

#endif  // SITFACT_CSC_CCSC_DISCOVERER_H_
