#ifndef SITFACT_CSC_CCSC_DISCOVERER_H_
#define SITFACT_CSC_CCSC_DISCOVERER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/discoverer.h"
#include "csc/compressed_skycube.h"
#include "lattice/constraint.h"
#include "skyline/subspace_index.h"

namespace sitfact {

/// C-CSC: the paper's adaptation of the Compressed SkyCube to situational-
/// fact discovery (Sec. II / Sec. VI). One CSC is maintained per context
/// ever instantiated; a new tuple updates the CSC of every constraint it
/// satisfies, and the update doubles as the membership test for every
/// measure subspace.
///
/// Rebuilt on the shared SubspaceIndex layer: each context pairs its cube
/// with a k-d index over the context members, promotion/demotion and the
/// membership read-off route through index-pruned candidate sets, and one
/// arrival-bound PartitionMemo is threaded through every context so a
/// (t, other) partition is computed once per arrival — not once per
/// subspace per context. The engine still cannot prune constraints (CSCs of
/// different contexts share no *storage*) and still loses to the lattice
/// family, but no longer by refusing the repo's own indexes.
///
/// Contract note: C-CSC's emitted facts are tuple-for-tuple identical to
/// the pre-index engine (pinned by the differential tests), but its
/// comparison counters reflect the index-pruned candidate sets — it is the
/// one engine exempt from the bit-identical-counter rule.
class CcscDiscoverer : public Discoverer {
 public:
  CcscDiscoverer(const Relation* relation, const DiscoveryOptions& options);
  ~CcscDiscoverer() override;

  std::string_view name() const override { return "C-CSC"; }
  void Discover(TupleId t, std::vector<SkylineFact>* facts) override;

  size_t ApproxMemoryBytes() const override;
  uint64_t StoredTupleCount() const override { return stored_total_; }

  /// The per-context compressed skycubes are private state that cannot be
  /// reconstructed from a relation snapshot without a full replay.
  bool SupportsSnapshotRestore() const override { return false; }

  /// Removal: every context containing `t` is rebuilt by replaying its
  /// remaining live members in arrival order. The final cube state is
  /// order-insensitive (minimum subspaces are a function of the member
  /// set), so this matches a from-scratch stream without `t` — a
  /// deliberately simple repair; C-CSC is a competitor, not a product path.
  bool SupportsRemoval() const override { return true; }
  Status Remove(TupleId t) override;

  /// The cube of one context (tests/inspection); nullptr if absent.
  const CompressedSkycube* cube(const Constraint& c) const;

 private:
  /// One context's cube + its member index. Held by unique_ptr so the
  /// cube's attached-index pointer survives map rehashes.
  struct ContextState {
    ContextState(const Relation* r, const SubspaceUniverse* universe)
        : cube(universe), index(r) {
      cube.AttachIndex(&index);
    }
    CompressedSkycube cube;
    SubspaceIndex index;
  };

  /// Replays `members` (in order) into a fresh state; returns its
  /// stored_count.
  std::unique_ptr<ContextState> RebuildState(
      const std::vector<TupleId>& members);

  std::vector<DimMask> masks_;
  std::unordered_map<Constraint, std::unique_ptr<ContextState>,
                     ConstraintHash>
      states_;
  uint64_t stored_total_ = 0;
  PartitionMemo arrival_memo_;
  PartitionMemo repair_memo_;
  std::vector<MeasureMask> sky_masks_scratch_;
};

}  // namespace sitfact

#endif  // SITFACT_CSC_CCSC_DISCOVERER_H_
