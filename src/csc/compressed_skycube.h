#ifndef SITFACT_CSC_COMPRESSED_SKYCUBE_H_
#define SITFACT_CSC_COMPRESSED_SKYCUBE_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "lattice/subspace_universe.h"
#include "relation/relation.h"
#include "skyline/dominance_batch.h"
#include "skyline/subspace_index.h"

namespace sitfact {

/// Compressed SkyCube of Xia & Zhang (SIGMOD'06), built from scratch: for
/// one fixed set of tuples (here: one context σ_C(R)) it stores every tuple
/// in its *minimum subspaces* — the measure subspaces where the tuple is a
/// skyline tuple but is not in the skyline of any proper subspace.
///
/// Key property (their Theorem 1, reproved in DESIGN.md): the skyline of any
/// subspace M is contained in ∪_{N ⊆ M} CSC[N], so both membership queries
/// and incremental maintenance can restrict attention to stored tuples.
///
/// The subspace lattice is truncated to the experiment's SubspaceUniverse
/// (all |M| <= m̂); truncation preserves the property because it is closed
/// under subsets.
class CompressedSkycube {
 public:
  /// `universe` must outlive the cube. With `share_partitions` (default) the
  /// update evaluates each candidate pair once and projects the comparison
  /// onto all subspaces via Prop. 4; that sharing is *this* paper's idea 3,
  /// so the C-CSC competitor passes false to get the 2006-era behaviour —
  /// an independent dominance scan per subspace, exactly what makes it an
  /// order of magnitude slower than the proposed algorithms.
  explicit CompressedSkycube(const SubspaceUniverse* universe,
                             bool share_partitions = true);

  /// Routes every membership decision (promotion, demotion repair, queries)
  /// through a shared per-context SubspaceIndex instead of physical scans
  /// of the stored buckets. The index must cover exactly this cube's
  /// context members — the owner inserts each tuple into the index before
  /// Insert()ing it here — and must outlive the cube. Attaching an index
  /// supersedes the share_partitions flag; the stored structure (minimum
  /// subspaces, stored_count) and all query *outputs* are unchanged, only
  /// the candidate sets visited (and hence the comparison counters) differ.
  void AttachIndex(const SubspaceIndex* index) { index_ = index; }

  /// Folds tuple `t` (a member of this cube's context) into the structure:
  ///   1. decides, for every admissible subspace, whether t enters the
  ///      skyline (appending those subspace masks to *skyline_subspaces);
  ///   2. stores t at its minimum subspaces;
  ///   3. demotes stored tuples that t now dominates, re-deriving their
  ///      minimum subspaces.
  /// Adds the number of tuple-pair comparisons performed to *comparisons.
  ///
  /// With an index attached, `arrival_memo` (bound to `t`) supplies the
  /// arrival's memoized partitions for promotion and demotion detection,
  /// and `repair_memo` is rebound to each demoted tuple for its two-phase
  /// recompute; either may be null (probes then fall back to batched
  /// partitions). Both are ignored without an index.
  void Insert(const Relation& r, TupleId t,
              std::vector<MeasureMask>* skyline_subspaces,
              uint64_t* comparisons, PartitionMemo* arrival_memo = nullptr,
              PartitionMemo* repair_memo = nullptr);

  /// The CSC query algorithm: skyline of subspace `m` from stored tuples.
  std::vector<TupleId> QuerySkyline(const Relation& r, MeasureMask m,
                                    uint64_t* comparisons) const;

  /// Allocation-free variant for callers issuing many queries (C-CSC runs
  /// one per subspace per context per arrival): *skyline is cleared and
  /// refilled.
  void QuerySkyline(const Relation& r, MeasureMask m, uint64_t* comparisons,
                    std::vector<TupleId>* skyline) const;

  /// The query algorithm's membership short-cut: is `t` (stored or not) in
  /// the skyline of `m`? Scans the same candidate set the full query visits
  /// — every bucket of a subspace of m — but stops at the first dominator.
  bool QueryMembership(const Relation& r, TupleId t, MeasureMask m,
                       uint64_t* comparisons) const;

  /// Stored tuple occurrences (a tuple stored in k minimum subspaces counts
  /// k times), mirroring the paper's Fig. 10b accounting.
  uint64_t stored_count() const { return stored_count_; }

  size_t ApproxMemoryBytes() const;

  /// Bucket of subspace `m` (tests/inspection).
  const std::vector<TupleId>* bucket(MeasureMask m) const;

 private:
  struct Entry {
    MeasureMask mask;
    std::vector<TupleId> tuples;
  };

  int FindEntry(MeasureMask m) const;
  std::vector<TupleId>* GetBucket(MeasureMask m, bool create);
  void EraseEverywhere(TupleId t);

  /// All distinct stored tuples, via sort+unique of bucket contents.
  void CollectStored(std::vector<TupleId>* out) const;

  /// Recomputes the subspace-skyline memberships of `t` against
  /// `candidates` (self-comparisons skipped): out[i] = true iff no candidate
  /// dominates t in universe mask i.
  void ComputeSkylineSet(const Relation& r, TupleId t,
                         const std::vector<TupleId>& candidates,
                         std::vector<uint8_t>* out, uint64_t* comparisons);

  /// Insert() body for the index-routed mode.
  void InsertIndexed(const Relation& r, TupleId t,
                     std::vector<MeasureMask>* skyline_subspaces,
                     uint64_t* comparisons, PartitionMemo* arrival_memo,
                     PartitionMemo* repair_memo);

  /// Stores `t` at the minimal masks of its skyline set.
  void StoreAtMinimalSubspaces(TupleId t,
                               const std::vector<uint8_t>& skyline_set);

  const SubspaceUniverse* universe_;
  bool share_partitions_;
  const SubspaceIndex* index_ = nullptr;
  std::vector<Entry> entries_;  // sorted by mask
  uint64_t stored_count_ = 0;
  // Scratch reused across Insert calls.
  std::vector<TupleId> stored_scratch_;
  std::vector<TupleId> demote_scratch_;
  std::vector<uint8_t> sky_scratch_;
  std::vector<TupleId> id_scratch_;
  std::vector<Relation::MeasurePartition> part_scratch_;
  mutable std::vector<TupleId> query_scratch_;  // QuerySkyline candidates
  mutable CompactKeyBlock compact_scratch_;     // gathered candidate keys
};

}  // namespace sitfact

#endif  // SITFACT_CSC_COMPRESSED_SKYCUBE_H_
