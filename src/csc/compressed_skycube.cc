#include "csc/compressed_skycube.h"

#include <algorithm>

#include "common/bits.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"

namespace sitfact {

namespace {

/// Ramped block scan over a gathered candidate block: partitions of the
/// probe (keys `pk`) against elements [0, block.count()) restricted to
/// `m`, delivered one at a time to `consume(index, partition)`; stops
/// early when consume returns false. One home for the ramp policy and the
/// "bill exactly what a scalar scan would consume" discipline shared by
/// the CSC promotion and query paths.
template <typename Consume>
void RampedCompactScan(const CompactKeyBlock& block, const double* pk,
                       MeasureMask m, Consume&& consume) {
  const size_t c = block.count();
  Relation::MeasurePartition parts[kDominanceBlockSize];
  size_t next = InitialRampBlock(c);
  for (size_t base = 0; base < c;) {
    size_t n = std::min(next, c - base);
    next = NextRampBlock(next);
    block.PartitionRun(pk, base, n, m, parts);
    for (size_t i = 0; i < n; ++i) {
      if (!consume(base + i, parts[i])) return;
    }
    base += n;
  }
}

}  // namespace

CompressedSkycube::CompressedSkycube(const SubspaceUniverse* universe,
                                     bool share_partitions)
    : universe_(universe), share_partitions_(share_partitions) {}

int CompressedSkycube::FindEntry(MeasureMask m) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), m,
      [](const Entry& e, MeasureMask mask) { return e.mask < mask; });
  if (it == entries_.end() || it->mask != m) return -1;
  return static_cast<int>(it - entries_.begin());
}

std::vector<TupleId>* CompressedSkycube::GetBucket(MeasureMask m,
                                                   bool create) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), m,
      [](const Entry& e, MeasureMask mask) { return e.mask < mask; });
  if (it != entries_.end() && it->mask == m) return &it->tuples;
  if (!create) return nullptr;
  it = entries_.insert(it, Entry{m, {}});
  return &it->tuples;
}

const std::vector<TupleId>* CompressedSkycube::bucket(MeasureMask m) const {
  int i = FindEntry(m);
  return i < 0 ? nullptr : &entries_[i].tuples;
}

void CompressedSkycube::EraseEverywhere(TupleId t) {
  for (auto& e : entries_) {
    auto it = std::find(e.tuples.begin(), e.tuples.end(), t);
    if (it != e.tuples.end()) {
      *it = e.tuples.back();
      e.tuples.pop_back();
      --stored_count_;
    }
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [](const Entry& e) {
                                  return e.tuples.empty();
                                }),
                 entries_.end());
}

void CompressedSkycube::CollectStored(std::vector<TupleId>* out) const {
  out->clear();
  for (const auto& e : entries_) {
    out->insert(out->end(), e.tuples.begin(), e.tuples.end());
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void CompressedSkycube::ComputeSkylineSet(
    const Relation& r, TupleId t, const std::vector<TupleId>& candidates,
    std::vector<uint8_t>* out, uint64_t* comparisons) {
  const auto& masks = universe_->masks();
  out->assign(masks.size(), 1);
  id_scratch_.clear();
  for (TupleId cand : candidates) {
    if (cand != t) id_scratch_.push_back(cand);
  }
  if (!share_partitions_) {
    // 2006-era behaviour: an independent scan per subspace. The candidate
    // keys are gathered once (layout prep, shared across the per-subspace
    // passes), but every subspace still pays its own physical scan, and
    // the comparison counter still bills exactly the tuples a scalar scan
    // would have consumed before stopping — the competitor's work profile
    // is the point of this mode.
    const size_t c = id_scratch_.size();
    if (c == 0) return;
    compact_scratch_.Gather(r, id_scratch_.data(), c,
                            r.schema().FullMeasureMask());
    double pk[kMaxMeasures];
    compact_scratch_.ProbeKeys(r, t, pk);
    for (size_t i = 0; i < masks.size(); ++i) {
      MeasureMask m = masks[i];
      RampedCompactScan(
          compact_scratch_, pk, m,
          [&](size_t, const Relation::MeasurePartition& p) {
            ++*comparisons;
            if (DominatedInSubspace(p, m)) {
              (*out)[i] = 0;
              return false;
            }
            return true;
          });
    }
    return;
  }
  *comparisons += id_scratch_.size();
  part_scratch_.resize(id_scratch_.size());
  PartitionBatch(r, t, id_scratch_.data(), id_scratch_.size(),
                 part_scratch_.data());
  for (size_t i = 0; i < masks.size(); ++i) {
    MeasureMask m = masks[i];
    for (const auto& p : part_scratch_) {
      if (DominatedInSubspace(p, m)) {
        (*out)[i] = 0;
        break;
      }
    }
  }
}

void CompressedSkycube::StoreAtMinimalSubspaces(
    TupleId t, const std::vector<uint8_t>& skyline_set) {
  const auto& masks = universe_->masks();
  for (size_t i = 0; i < masks.size(); ++i) {
    if (!skyline_set[i]) continue;
    MeasureMask m = masks[i];
    // Minimum subspace: no proper (non-empty) subspace also holds t in its
    // skyline. Subsets of an admissible mask are always admissible.
    bool minimal = true;
    ForEachProperSubset(m, [&](MeasureMask sub) {
      if (!minimal || sub == 0) return;
      int idx = universe_->IndexOf(sub);
      if (idx >= 0 && skyline_set[idx]) minimal = false;
    });
    if (minimal) {
      GetBucket(m, /*create=*/true)->push_back(t);
      ++stored_count_;
    }
  }
}

void CompressedSkycube::InsertIndexed(
    const Relation& r, TupleId t,
    std::vector<MeasureMask>* skyline_subspaces, uint64_t* comparisons,
    PartitionMemo* arrival_memo, PartitionMemo* repair_memo) {
  const auto& masks = universe_->masks();

  // 1. t's own skyline memberships, via index probes. Probing against all
  // context members is equivalent to the legacy stored-tuple scan: both
  // candidate sets contain the subspace skyline (CSC containment), and a
  // dominator chain always terminates at a skyline member, so the
  // membership booleans agree pair for pair.
  index_->ComputeSkylineSet(t, *universe_, arrival_memo, &sky_scratch_,
                            comparisons);
  for (size_t i = 0; i < masks.size(); ++i) {
    if (sky_scratch_[i]) skyline_subspaces->push_back(masks[i]);
  }

  // 2. Store t at its minimum subspaces.
  StoreAtMinimalSubspaces(t, sky_scratch_);

  // 3. Demotion detection: same trigger as the legacy path (t dominates a
  // stored tuple in a subspace where it is STORED), but each pair costs a
  // memoized partition instead of a physical bucket scan.
  demote_scratch_.clear();
  for (const Entry& e : entries_) {
    for (TupleId u : e.tuples) {
      if (u == t) continue;
      ++*comparisons;
      Relation::MeasurePartition local;
      const Relation::MeasurePartition& p =
          arrival_memo != nullptr ? arrival_memo->Get(u)
                                  : (local = r.Partition(t, u));
      if (DominatesInSubspace(p, e.mask)) demote_scratch_.push_back(u);
    }
  }
  if (demote_scratch_.empty()) return;
  std::sort(demote_scratch_.begin(), demote_scratch_.end());
  demote_scratch_.erase(
      std::unique(demote_scratch_.begin(), demote_scratch_.end()),
      demote_scratch_.end());

  // Two-phase recompute per demoted tuple: index-filtered candidates, then
  // exact Prop.-4 verification (through repair_memo when supplied).
  for (TupleId other : demote_scratch_) {
    EraseEverywhere(other);
    if (repair_memo != nullptr) repair_memo->BeginArrival(r, other);
    index_->ComputeSkylineSet(other, *universe_, repair_memo, &sky_scratch_,
                              comparisons);
    StoreAtMinimalSubspaces(other, sky_scratch_);
  }
}

void CompressedSkycube::Insert(const Relation& r, TupleId t,
                               std::vector<MeasureMask>* skyline_subspaces,
                               uint64_t* comparisons,
                               PartitionMemo* arrival_memo,
                               PartitionMemo* repair_memo) {
  if (index_ != nullptr) {
    InsertIndexed(r, t, skyline_subspaces, comparisons, arrival_memo,
                  repair_memo);
    return;
  }
  const auto& masks = universe_->masks();

  // Snapshot of stored tuples: by the CSC containment property they are a
  // superset of every subspace skyline, hence a sufficient candidate set for
  // all membership decisions below.
  CollectStored(&stored_scratch_);

  // 1. t's own skyline memberships.
  ComputeSkylineSet(r, t, stored_scratch_, &sky_scratch_, comparisons);
  for (size_t i = 0; i < masks.size(); ++i) {
    if (sky_scratch_[i]) skyline_subspaces->push_back(masks[i]);
  }

  // 2. Store t at its minimum subspaces.
  StoreAtMinimalSubspaces(t, sky_scratch_);

  // 3. Demote stored tuples that t dethrones. A stored tuple's minimum-
  // subspace set changes only when t dominates it in a subspace where it is
  // STORED: removing non-minimal members from a tuple's skyline-subspace set
  // leaves its minimal elements (and hence its storage) untouched. This is
  // the incremental trigger of Xia & Zhang's update — without it every
  // insertion would rebuild most of the cube.
  demote_scratch_.clear();
  for (const Entry& e : entries_) {
    BlockedPartitionScan scan(r, t, e.tuples.data(), e.tuples.size(), e.mask,
                              /*unmasked=*/false);
    for (size_t i = 0; i < e.tuples.size(); ++i) {
      if (e.tuples[i] == t) continue;
      ++*comparisons;
      if (DominatesInSubspace(scan.at(i), e.mask)) {
        demote_scratch_.push_back(e.tuples[i]);
      }
    }
  }
  if (demote_scratch_.empty()) return;
  std::sort(demote_scratch_.begin(), demote_scratch_.end());
  demote_scratch_.erase(
      std::unique(demote_scratch_.begin(), demote_scratch_.end()),
      demote_scratch_.end());

  std::vector<TupleId> snapshot = stored_scratch_;  // candidates incl. t
  snapshot.push_back(t);
  for (TupleId other : demote_scratch_) {
    EraseEverywhere(other);
    ComputeSkylineSet(r, other, snapshot, &sky_scratch_, comparisons);
    StoreAtMinimalSubspaces(other, sky_scratch_);
  }
}

std::vector<TupleId> CompressedSkycube::QuerySkyline(
    const Relation& r, MeasureMask m, uint64_t* comparisons) const {
  std::vector<TupleId> skyline;
  QuerySkyline(r, m, comparisons, &skyline);
  return skyline;
}

void CompressedSkycube::QuerySkyline(const Relation& r, MeasureMask m,
                                     uint64_t* comparisons,
                                     std::vector<TupleId>* skyline) const {
  // Candidates: every tuple stored at a subspace of m, ascending by id (a
  // deterministic scan order, so the billed comparison trace is too). The
  // scratch is reused across the millions of per-subspace queries the
  // C-CSC adaptation issues; not thread-safe, like the rest of the cube.
  std::vector<TupleId>& candidates = query_scratch_;
  candidates.clear();
  for (const auto& e : entries_) {
    if (IsSubsetOf(e.mask, m)) {
      candidates.insert(candidates.end(), e.tuples.begin(), e.tuples.end());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  skyline->clear();
  const size_t c = candidates.size();
  if (c == 0) return;
  if (index_ != nullptr) {
    // Index-routed probes: a candidate survives against the candidate set
    // iff it survives against all members (dominator chains terminate at
    // skyline members, which are themselves candidates), so the output is
    // identical to the scan below.
    for (TupleId cand : candidates) {
      if (index_->IsSkylineMember(cand, m, nullptr, comparisons)) {
        skyline->push_back(cand);
      }
    }
    return;
  }
  // Every probe rescans the whole candidate set, so gather the |m| key
  // columns once into a compact (cache-resident) block and stream it per
  // probe; ramped blocks keep early exits — the common outcome — from
  // paying for lookahead.
  compact_scratch_.Gather(r, candidates.data(), c, m);
  double pk[kMaxMeasures];
  for (size_t pi = 0; pi < c; ++pi) {
    compact_scratch_.ProbeKeysAt(pi, pk);
    bool dominated = false;
    RampedCompactScan(compact_scratch_, pk, m,
                      [&](size_t i, const Relation::MeasurePartition& p) {
                        if (i == pi) return true;  // self-comparison
                        ++*comparisons;
                        if (DominatedInSubspace(p, m)) {
                          dominated = true;
                          return false;
                        }
                        return true;
                      });
    if (!dominated) skyline->push_back(candidates[pi]);
  }
}

bool CompressedSkycube::QueryMembership(const Relation& r, TupleId t,
                                        MeasureMask m,
                                        uint64_t* comparisons) const {
  if (index_ != nullptr) {
    return index_->IsSkylineMember(t, m, nullptr, comparisons);
  }
  for (const Entry& e : entries_) {
    if (!IsSubsetOf(e.mask, m)) continue;
    BlockedPartitionScan scan(r, t, e.tuples.data(), e.tuples.size(), m,
                              /*unmasked=*/false);
    for (size_t i = 0; i < e.tuples.size(); ++i) {
      if (e.tuples[i] == t) continue;
      ++*comparisons;
      if (DominatedInSubspace(scan.at(i), m)) return false;
    }
  }
  return true;
}

size_t CompressedSkycube::ApproxMemoryBytes() const {
  size_t bytes = entries_.capacity() * sizeof(Entry);
  for (const auto& e : entries_) {
    bytes += e.tuples.capacity() * sizeof(TupleId);
  }
  return bytes;
}

}  // namespace sitfact
