#include "csc/compressed_skycube.h"

#include <algorithm>

#include "common/bits.h"
#include "skyline/dominance.h"

namespace sitfact {

CompressedSkycube::CompressedSkycube(const SubspaceUniverse* universe,
                                     bool share_partitions)
    : universe_(universe), share_partitions_(share_partitions) {}

int CompressedSkycube::FindEntry(MeasureMask m) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), m,
      [](const Entry& e, MeasureMask mask) { return e.mask < mask; });
  if (it == entries_.end() || it->mask != m) return -1;
  return static_cast<int>(it - entries_.begin());
}

std::vector<TupleId>* CompressedSkycube::GetBucket(MeasureMask m,
                                                   bool create) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), m,
      [](const Entry& e, MeasureMask mask) { return e.mask < mask; });
  if (it != entries_.end() && it->mask == m) return &it->tuples;
  if (!create) return nullptr;
  it = entries_.insert(it, Entry{m, {}});
  return &it->tuples;
}

const std::vector<TupleId>* CompressedSkycube::bucket(MeasureMask m) const {
  int i = FindEntry(m);
  return i < 0 ? nullptr : &entries_[i].tuples;
}

void CompressedSkycube::EraseEverywhere(TupleId t) {
  for (auto& e : entries_) {
    auto it = std::find(e.tuples.begin(), e.tuples.end(), t);
    if (it != e.tuples.end()) {
      *it = e.tuples.back();
      e.tuples.pop_back();
      --stored_count_;
    }
  }
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [](const Entry& e) {
                                  return e.tuples.empty();
                                }),
                 entries_.end());
}

void CompressedSkycube::CollectStored(std::vector<TupleId>* out) const {
  out->clear();
  for (const auto& e : entries_) {
    out->insert(out->end(), e.tuples.begin(), e.tuples.end());
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void CompressedSkycube::ComputeSkylineSet(
    const Relation& r, TupleId t, const std::vector<TupleId>& candidates,
    std::vector<uint8_t>* out, uint64_t* comparisons) {
  const auto& masks = universe_->masks();
  out->assign(masks.size(), 1);
  if (!share_partitions_) {
    // 2006-era behaviour: an independent scan per subspace.
    for (size_t i = 0; i < masks.size(); ++i) {
      for (TupleId cand : candidates) {
        if (cand == t) continue;
        ++*comparisons;
        if (Dominates(r, cand, t, masks[i])) {
          (*out)[i] = 0;
          break;
        }
      }
    }
    return;
  }
  part_scratch_.clear();
  for (TupleId cand : candidates) {
    if (cand == t) continue;
    ++*comparisons;
    part_scratch_.push_back(r.Partition(t, cand));
  }
  for (size_t i = 0; i < masks.size(); ++i) {
    MeasureMask m = masks[i];
    for (const auto& p : part_scratch_) {
      if (DominatedInSubspace(p, m)) {
        (*out)[i] = 0;
        break;
      }
    }
  }
}

void CompressedSkycube::StoreAtMinimalSubspaces(
    TupleId t, const std::vector<uint8_t>& skyline_set) {
  const auto& masks = universe_->masks();
  for (size_t i = 0; i < masks.size(); ++i) {
    if (!skyline_set[i]) continue;
    MeasureMask m = masks[i];
    // Minimum subspace: no proper (non-empty) subspace also holds t in its
    // skyline. Subsets of an admissible mask are always admissible.
    bool minimal = true;
    ForEachProperSubset(m, [&](MeasureMask sub) {
      if (!minimal || sub == 0) return;
      int idx = universe_->IndexOf(sub);
      if (idx >= 0 && skyline_set[idx]) minimal = false;
    });
    if (minimal) {
      GetBucket(m, /*create=*/true)->push_back(t);
      ++stored_count_;
    }
  }
}

void CompressedSkycube::Insert(const Relation& r, TupleId t,
                               std::vector<MeasureMask>* skyline_subspaces,
                               uint64_t* comparisons) {
  const auto& masks = universe_->masks();

  // Snapshot of stored tuples: by the CSC containment property they are a
  // superset of every subspace skyline, hence a sufficient candidate set for
  // all membership decisions below.
  CollectStored(&stored_scratch_);

  // 1. t's own skyline memberships.
  ComputeSkylineSet(r, t, stored_scratch_, &sky_scratch_, comparisons);
  for (size_t i = 0; i < masks.size(); ++i) {
    if (sky_scratch_[i]) skyline_subspaces->push_back(masks[i]);
  }

  // 2. Store t at its minimum subspaces.
  StoreAtMinimalSubspaces(t, sky_scratch_);

  // 3. Demote stored tuples that t dethrones. A stored tuple's minimum-
  // subspace set changes only when t dominates it in a subspace where it is
  // STORED: removing non-minimal members from a tuple's skyline-subspace set
  // leaves its minimal elements (and hence its storage) untouched. This is
  // the incremental trigger of Xia & Zhang's update — without it every
  // insertion would rebuild most of the cube.
  demote_scratch_.clear();
  for (const Entry& e : entries_) {
    for (TupleId other : e.tuples) {
      if (other == t) continue;
      ++*comparisons;
      Relation::MeasurePartition p = r.Partition(t, other);
      if (DominatesInSubspace(p, e.mask)) demote_scratch_.push_back(other);
    }
  }
  if (demote_scratch_.empty()) return;
  std::sort(demote_scratch_.begin(), demote_scratch_.end());
  demote_scratch_.erase(
      std::unique(demote_scratch_.begin(), demote_scratch_.end()),
      demote_scratch_.end());

  std::vector<TupleId> snapshot = stored_scratch_;  // candidates incl. t
  snapshot.push_back(t);
  for (TupleId other : demote_scratch_) {
    EraseEverywhere(other);
    ComputeSkylineSet(r, other, snapshot, &sky_scratch_, comparisons);
    StoreAtMinimalSubspaces(other, sky_scratch_);
  }
}

std::vector<TupleId> CompressedSkycube::QuerySkyline(
    const Relation& r, MeasureMask m, uint64_t* comparisons) const {
  // Candidates: every tuple stored at a subspace of m.
  std::vector<TupleId> candidates;
  for (const auto& e : entries_) {
    if (IsSubsetOf(e.mask, m)) {
      candidates.insert(candidates.end(), e.tuples.begin(), e.tuples.end());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<TupleId> skyline;
  for (TupleId t : candidates) {
    bool dominated = false;
    for (TupleId other : candidates) {
      if (other == t) continue;
      ++*comparisons;
      if (Dominates(r, other, t, m)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(t);
  }
  return skyline;
}

bool CompressedSkycube::QueryMembership(const Relation& r, TupleId t,
                                        MeasureMask m,
                                        uint64_t* comparisons) const {
  for (const Entry& e : entries_) {
    if (!IsSubsetOf(e.mask, m)) continue;
    for (TupleId cand : e.tuples) {
      if (cand == t) continue;
      ++*comparisons;
      if (Dominates(r, cand, t, m)) return false;
    }
  }
  return true;
}

size_t CompressedSkycube::ApproxMemoryBytes() const {
  size_t bytes = entries_.capacity() * sizeof(Entry);
  for (const auto& e : entries_) {
    bytes += e.tuples.capacity() * sizeof(TupleId);
  }
  return bytes;
}

}  // namespace sitfact
