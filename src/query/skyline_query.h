#ifndef SITFACT_QUERY_SKYLINE_QUERY_H_
#define SITFACT_QUERY_SKYLINE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "lattice/constraint.h"
#include "relation/relation.h"
#include "skyline/skyband_index.h"

namespace sitfact {

/// One-shot skyline query algorithms. The discovery side of this library
/// answers the paper's *reverse* problem (find the queries for a new tuple);
/// this module answers the classical *forward* problem — given a constraint
/// and a measure subspace, return the contextual skyline λ_M(σ_C(R)).
///
/// Three from-scratch evaluators are provided:
///  * Block-nested-loops (BNL, Börzsönyi et al. ICDE'01): a window of
///    incomparable tuples, each candidate compared against the window.
///  * Sort-filter-skyline (SFS, Chomicki et al.): candidates presorted by a
///    monotone score so any dominator of a tuple precedes it; every survivor
///    is final when visited, and comparisons run against confirmed skyline
///    tuples only.
///  * Divide-and-conquer (Börzsönyi et al.): median split on one measure,
///    recursive skylines, cross-filter of the worse half by the better half.
///
/// All three are exact and agree with the quadratic oracle in
/// skyline/skyline_compute.h; they exist so that (a) downstream users get a
/// serviceable skyline operator, (b) differential tests have independent
/// implementations to cross-check, and (c) the CLI `query` subcommand has an
/// efficient evaluator for ad-hoc contexts.
enum class QueryAlgorithm {
  kAuto,              ///< planner picks by context size
  kBlockNestedLoops,  ///< window algorithm, no preprocessing
  kSortFilter,        ///< presort by monotone score, filter
  kDivideConquer,     ///< median split + cross-filtering
};

/// Returns the canonical lowercase name ("bnl", "sfs", "dnc", "auto").
const char* QueryAlgorithmName(QueryAlgorithm a);

/// Parses a name accepted by QueryAlgorithmName; returns kAuto for unknown
/// strings (callers that must reject bad input validate beforehand).
QueryAlgorithm ParseQueryAlgorithm(const std::string& name);

/// The kAuto planner's size threshold: contexts of at most this many
/// candidates run BNL (the window fits in cache and presorting only adds
/// constant factors); larger contexts run SFS. Also the recursion base size
/// for divide-and-conquer.
inline constexpr size_t kAutoSmallContext = 64;

/// The BNL window for *narrow* subspaces (see the three-arg ResolveAuto).
/// Calibrated against the index-routed C-CSC engine: its candidate sets
/// arrive pre-pruned by the subspace index, so by the time a query runs,
/// moderate-size candidate lists behave like the small contexts the old
/// threshold assumed — and on one or two measures the SFS presort is pure
/// overhead because the BNL window stays tiny (a narrow subspace has few
/// incomparable tuples).
inline constexpr size_t kAutoNarrowContext = 256;

/// Subspaces with at most this many measures take the wider BNL window.
inline constexpr int kAutoNarrowMeasures = 2;

/// Resolves kAuto to a concrete algorithm for a context of `context_size`
/// candidates; non-auto inputs pass through unchanged. Exposed so tests can
/// pin the planner's threshold behavior (a silent flip would invalidate
/// every kAuto benchmark).
QueryAlgorithm ResolveAuto(QueryAlgorithm algo, size_t context_size);

/// Subspace-aware resolution: narrow subspaces (|m| <=
/// kAutoNarrowMeasures) stay on BNL up to kAutoNarrowContext candidates;
/// everything else follows the two-arg rule. This is the planner profile
/// for the post-rebuild C-CSC cost model, where index-pruned candidate
/// sets replaced the physical per-subspace scans the old threshold was
/// tuned against. Pinned by query_test.
QueryAlgorithm ResolveAuto(QueryAlgorithm algo, size_t context_size,
                           MeasureMask m);

/// Work counters for one evaluation (reset per query).
struct QueryStats {
  uint64_t context_size = 0;  ///< |σ_C(R)| scanned into the candidate set
  uint64_t comparisons = 0;   ///< pairwise dominance tests
  uint64_t recursive_calls = 0;  ///< divide-and-conquer partitions
};

/// Result of one contextual skyline query.
struct SkylineQueryResult {
  std::vector<TupleId> skyline;  ///< ascending TupleId order
  QueryStats stats;
  /// True when an attached SkybandIndex served the answer directly (no
  /// context scan, no dominance tests; stats stay zero).
  bool from_index = false;
};

/// Evaluates contextual skyline queries against a live Relation. Stateless
/// between queries apart from the relation pointer; cheap to construct.
class SkylineQueryEngine {
 public:
  /// `relation` must outlive the engine.
  explicit SkylineQueryEngine(const Relation* relation);

  /// Routes future kAuto Evaluate calls through `index` for the query
  /// shapes it covers (a live Invariant-1 index within its dimension
  /// knobs): the µ bucket IS λ_M(σ_C(R)) there, so the answer comes out of
  /// the index without scanning the relation. nullptr — or an index that is
  /// not live — detaches and restores pure scans. The index must outlive
  /// the engine (or be detached first) and forced algorithms always bypass
  /// it, which is what differential tests diff against.
  void set_skyband(const SkybandIndex* index) {
    skyband_ = (index != nullptr && index->live()) ? index : nullptr;
  }

  /// λ_M(σ_C(R)) over all live (non-deleted) tuples.
  SkylineQueryResult Evaluate(const Constraint& c, MeasureMask m,
                              QueryAlgorithm algo = QueryAlgorithm::kAuto)
      const;

  /// λ_M over an explicit candidate set (already context-filtered). The
  /// candidate list may be in any order; output is ascending.
  SkylineQueryResult EvaluateCandidates(std::vector<TupleId> candidates,
                                        MeasureMask m,
                                        QueryAlgorithm algo) const;

  /// k-skyband of the candidates: tuples dominated by fewer than `k` others
  /// in subspace `m` (k=1 is the skyline). Quadratic counting; used by the
  /// one-of-the-few extension and by tests as a dominator-count oracle.
  std::vector<TupleId> KSkyband(const std::vector<TupleId>& candidates,
                                MeasureMask m, int k) const;

  /// Number of candidates that dominate `t` in `m` (`t` itself skipped).
  uint64_t CountDominators(TupleId t, const std::vector<TupleId>& candidates,
                           MeasureMask m) const;

  /// "One of the τ" (Wu et al., KDD'12): the largest k whose k-skyband has
  /// at most `tau` members, with that band. k starts at 1 (the skyline); if
  /// even the skyline exceeds `tau` members, k = 0 and the band is empty.
  struct OneOfTheFewResult {
    int k = 0;
    std::vector<TupleId> band;
  };
  OneOfTheFewResult OneOfTheFew(const std::vector<TupleId>& candidates,
                                MeasureMask m, int tau) const;

 private:
  std::vector<TupleId> BlockNestedLoops(std::vector<TupleId> candidates,
                                        MeasureMask m, QueryStats* stats)
      const;
  std::vector<TupleId> SortFilter(std::vector<TupleId> candidates,
                                  MeasureMask m, QueryStats* stats) const;
  std::vector<TupleId> DivideConquer(std::vector<TupleId> candidates,
                                     MeasureMask m, QueryStats* stats) const;

  /// Recursive worker for DivideConquer; `axes` rotates the split measure.
  std::vector<TupleId> DncRec(std::vector<TupleId> candidates, MeasureMask m,
                              int depth, QueryStats* stats) const;

  const Relation* relation_;
  const SkybandIndex* skyband_ = nullptr;
};

}  // namespace sitfact

#endif  // SITFACT_QUERY_SKYLINE_QUERY_H_
