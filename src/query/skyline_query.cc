#include "query/skyline_query.h"

#include <algorithm>
#include <numeric>

#include "common/bits.h"
#include "common/logging.h"
#include "skyline/dominance.h"

namespace sitfact {

namespace {

// Monotone SFS score: the sum of direction-adjusted keys over the subspace.
// If a dominates b in m then score(a) > score(b) strictly (a is >= on every
// measure of m and > on at least one), so sorting by descending score places
// every dominator before its victims.
double SfsScore(const Relation& r, TupleId t, MeasureMask m) {
  double score = 0;
  ForEachBit(m, [&](int j) { score += r.measure_key(t, j); });
  return score;
}

}  // namespace

const char* QueryAlgorithmName(QueryAlgorithm a) {
  switch (a) {
    case QueryAlgorithm::kAuto:
      return "auto";
    case QueryAlgorithm::kBlockNestedLoops:
      return "bnl";
    case QueryAlgorithm::kSortFilter:
      return "sfs";
    case QueryAlgorithm::kDivideConquer:
      return "dnc";
  }
  return "auto";
}

QueryAlgorithm ParseQueryAlgorithm(const std::string& name) {
  if (name == "bnl") return QueryAlgorithm::kBlockNestedLoops;
  if (name == "sfs") return QueryAlgorithm::kSortFilter;
  if (name == "dnc") return QueryAlgorithm::kDivideConquer;
  return QueryAlgorithm::kAuto;
}

QueryAlgorithm ResolveAuto(QueryAlgorithm algo, size_t context_size) {
  if (algo != QueryAlgorithm::kAuto) return algo;
  return context_size <= kAutoSmallContext ? QueryAlgorithm::kBlockNestedLoops
                                           : QueryAlgorithm::kSortFilter;
}

QueryAlgorithm ResolveAuto(QueryAlgorithm algo, size_t context_size,
                           MeasureMask m) {
  if (algo != QueryAlgorithm::kAuto) return algo;
  if (PopCount(m) <= kAutoNarrowMeasures &&
      context_size <= kAutoNarrowContext) {
    return QueryAlgorithm::kBlockNestedLoops;
  }
  return ResolveAuto(algo, context_size);
}

SkylineQueryEngine::SkylineQueryEngine(const Relation* relation)
    : relation_(relation) {
  SITFACT_CHECK(relation != nullptr);
}

SkylineQueryResult SkylineQueryEngine::Evaluate(const Constraint& c,
                                                MeasureMask m,
                                                QueryAlgorithm algo) const {
  // The planner's fastest plan: under Invariant 1 an attached skyband
  // index already holds λ_M(σ_C(R)) for every covered shape (a shape with
  // no band has an empty context), so kAuto short-circuits to a sorted
  // copy. A forced algorithm still scans, keeping an index-free oracle
  // reachable.
  if (algo == QueryAlgorithm::kAuto && skyband_ != nullptr &&
      skyband_->CoversQuery(c, m)) {
    SkylineQueryResult result;
    result.skyline = skyband_->Members(c, m);
    result.from_index = true;
    return result;
  }
  std::vector<TupleId> candidates;
  for (TupleId t = 0; t < relation_->size(); ++t) {
    if (!relation_->IsDeleted(t) && c.SatisfiedBy(*relation_, t)) {
      candidates.push_back(t);
    }
  }
  return EvaluateCandidates(std::move(candidates), m, algo);
}

SkylineQueryResult SkylineQueryEngine::EvaluateCandidates(
    std::vector<TupleId> candidates, MeasureMask m,
    QueryAlgorithm algo) const {
  SkylineQueryResult result;
  result.stats.context_size = candidates.size();
  algo = ResolveAuto(algo, candidates.size(), m);
  switch (algo) {
    case QueryAlgorithm::kBlockNestedLoops:
      result.skyline = BlockNestedLoops(std::move(candidates), m,
                                        &result.stats);
      break;
    case QueryAlgorithm::kSortFilter:
      result.skyline = SortFilter(std::move(candidates), m, &result.stats);
      break;
    case QueryAlgorithm::kDivideConquer:
      result.skyline = DivideConquer(std::move(candidates), m, &result.stats);
      break;
    case QueryAlgorithm::kAuto:
      break;  // unreachable; resolved above
  }
  std::sort(result.skyline.begin(), result.skyline.end());
  return result;
}

std::vector<TupleId> SkylineQueryEngine::BlockNestedLoops(
    std::vector<TupleId> candidates, MeasureMask m, QueryStats* stats) const {
  const Relation& r = *relation_;
  std::vector<TupleId> window;
  for (TupleId t : candidates) {
    bool dominated = false;
    size_t keep = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      ++stats->comparisons;
      if (Dominates(r, window[i], t, m)) {
        dominated = true;
        // Everything after i is untouched; keep the full window as is.
        for (size_t j = i; j < window.size(); ++j) window[keep++] = window[j];
        break;
      }
      if (!Dominates(r, t, window[i], m)) window[keep++] = window[i];
      // Window tuples dominated by t are dropped by not copying them.
    }
    if (dominated) continue;
    window.resize(keep);
    window.push_back(t);
  }
  return window;
}

std::vector<TupleId> SkylineQueryEngine::SortFilter(
    std::vector<TupleId> candidates, MeasureMask m, QueryStats* stats) const {
  const Relation& r = *relation_;
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](TupleId a, TupleId b) {
                     return SfsScore(r, a, m) > SfsScore(r, b, m);
                   });
  std::vector<TupleId> skyline;
  for (TupleId t : candidates) {
    bool dominated = false;
    for (TupleId s : skyline) {
      ++stats->comparisons;
      if (Dominates(r, s, t, m)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(t);
  }
  return skyline;
}

std::vector<TupleId> SkylineQueryEngine::DivideConquer(
    std::vector<TupleId> candidates, MeasureMask m, QueryStats* stats) const {
  if (m == 0) return candidates;
  return DncRec(std::move(candidates), m, 0, stats);
}

std::vector<TupleId> SkylineQueryEngine::DncRec(std::vector<TupleId> cands,
                                                MeasureMask m, int depth,
                                                QueryStats* stats) const {
  const Relation& r = *relation_;
  ++stats->recursive_calls;
  if (cands.size() <= kAutoSmallContext) {
    return BlockNestedLoops(std::move(cands), m, stats);
  }

  // Rotate the split axis through the subspace's measures by depth.
  std::vector<int> axes;
  ForEachBit(m, [&](int j) { axes.push_back(j); });
  int axis = axes[static_cast<size_t>(depth) % axes.size()];

  // Median split on the chosen axis: `high` strictly better than the median
  // key, `low` the rest. A low tuple is never better than a high tuple on
  // `axis`, so low tuples cannot dominate high ones and the cross-filter
  // only runs one way.
  std::vector<TupleId> sorted = cands;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end(), [&](TupleId a, TupleId b) {
                     return r.measure_key(a, axis) < r.measure_key(b, axis);
                   });
  double median = r.measure_key(sorted[sorted.size() / 2], axis);

  std::vector<TupleId> low, high;
  for (TupleId t : cands) {
    (r.measure_key(t, axis) > median ? high : low).push_back(t);
  }
  if (high.empty() || low.empty()) {
    // Degenerate split (many ties on this axis). Try the remaining axes at
    // deeper rotation; if every axis degenerates the candidates are heavily
    // tied and BNL is the right tool.
    if (static_cast<size_t>(depth) + 1 < axes.size() * 2) {
      return DncRec(std::move(cands), m, depth + 1, stats);
    }
    return BlockNestedLoops(std::move(cands), m, stats);
  }

  std::vector<TupleId> high_sky = DncRec(std::move(high), m, depth + 1, stats);
  std::vector<TupleId> low_sky = DncRec(std::move(low), m, depth + 1, stats);

  std::vector<TupleId> merged = high_sky;
  for (TupleId t : low_sky) {
    bool dominated = false;
    for (TupleId h : high_sky) {
      ++stats->comparisons;
      if (Dominates(r, h, t, m)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged.push_back(t);
  }
  return merged;
}

std::vector<TupleId> SkylineQueryEngine::KSkyband(
    const std::vector<TupleId>& candidates, MeasureMask m, int k) const {
  std::vector<TupleId> band;
  for (TupleId t : candidates) {
    if (CountDominators(t, candidates, m) < static_cast<uint64_t>(k)) {
      band.push_back(t);
    }
  }
  return band;
}

uint64_t SkylineQueryEngine::CountDominators(
    TupleId t, const std::vector<TupleId>& candidates, MeasureMask m) const {
  uint64_t count = 0;
  for (TupleId other : candidates) {
    if (other != t && Dominates(*relation_, other, t, m)) ++count;
  }
  return count;
}

SkylineQueryEngine::OneOfTheFewResult SkylineQueryEngine::OneOfTheFew(
    const std::vector<TupleId>& candidates, MeasureMask m, int tau) const {
  // Dominator counts induce the whole skyband ladder at once: the k-skyband
  // is everything with count < k, so the band sizes are a running histogram.
  std::vector<std::pair<uint64_t, TupleId>> counted;
  counted.reserve(candidates.size());
  for (TupleId t : candidates) {
    counted.emplace_back(CountDominators(t, candidates, m), t);
  }
  std::sort(counted.begin(), counted.end());

  OneOfTheFewResult result;
  // Walk k upward while the band (prefix with count < k) stays within tau.
  size_t idx = 0;
  for (int k = 1;; ++k) {
    while (idx < counted.size() &&
           counted[idx].first < static_cast<uint64_t>(k)) {
      ++idx;
    }
    if (idx > static_cast<size_t>(tau)) break;
    result.k = k;
    if (idx == counted.size()) break;  // the whole context fits; k is maximal
  }
  if (result.k > 0) {
    for (const auto& [count, t] : counted) {
      if (count < static_cast<uint64_t>(result.k)) result.band.push_back(t);
    }
    std::sort(result.band.begin(), result.band.end());
  }
  return result;
}

}  // namespace sitfact
