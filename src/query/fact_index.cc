#include "query/fact_index.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/logging.h"

namespace sitfact {

namespace {

/// Bucket index for a prominence value: 0 for p < 1 (unranked records; a
/// ranked fact's prominence is always >= 1 since the skyline is a subset of
/// the context), otherwise floor(log2(p)) + 1 capped at the top bucket.
/// Bucket b > 0 holds p in [2^(b-1), 2^b), so bucket ranges are disjoint
/// and descending-bucket order is coarse descending-prominence order.
int ProminenceBucket(double p) {
  if (!(p >= 1.0)) return 0;
  const auto v = static_cast<uint64_t>(p);
  const int width = std::bit_width(v);  // >= 1 because v >= 1
  return width < FactIndexSnapshot::kProminenceBuckets
             ? width
             : FactIndexSnapshot::kProminenceBuckets - 1;
}

/// TopK order: prominence descending, record id ascending.
bool TopKBefore(double pa, uint32_t ia, double pb, uint32_t ib) {
  if (pa != pb) return pa > pb;
  return ia < ib;
}

BandVec* FindList(std::vector<std::pair<uint32_t, BandVec>>* lists,
                  uint32_t key) {
  for (auto& [k, list] : *lists) {
    if (k == key) return &list;
  }
  return nullptr;
}

}  // namespace

bool FactFilter::Matches(const FactRecord& r) const {
  if (!include_dead && !r.live) return false;
  if (tuple.has_value() && r.tuple != *tuple) return false;
  if (bound_mask.has_value() && r.fact.constraint.bound_mask() != *bound_mask) {
    return false;
  }
  if (subspace.has_value() && r.fact.subspace != *subspace) return false;
  if (about.has_value() && !r.fact.constraint.SubsumedByOrEqual(*about)) {
    return false;
  }
  if (r.arrival_seq < min_arrival || r.arrival_seq > max_arrival) return false;
  if (r.prominence < min_prominence) return false;
  if (prominent_only && !r.prominent) return false;
  return true;
}

const std::string& FactIndexSnapshot::narration(uint32_t id) const {
  static const std::string kEmpty;
  return id < narrations_.size() ? narrations_[id] : kEmpty;
}

uint32_t FactIndexSnapshot::ArrivalOfTuple(TupleId t) const {
  if (t >= tuple_to_arrival_.size()) return kNoArrival;
  return tuple_to_arrival_[t];
}

const BandVec* FactIndexSnapshot::BoundList(DimMask mask) const {
  for (const auto& [k, list] : by_bound_) {
    if (k == mask) return &list;
  }
  return nullptr;
}

const BandVec* FactIndexSnapshot::SubspaceList(MeasureMask mask) const {
  for (const auto& [k, list] : by_subspace_) {
    if (k == mask) return &list;
  }
  return nullptr;
}

TopKResult FactIndexSnapshot::TopK(size_t k, const FactFilter& filter,
                                   const std::optional<TopKCursor>& cursor)
    const {
  TopKResult result;
  if (k == 0) return result;
  if (skyband_) return TopKOrdered(k, filter, cursor);

  std::vector<uint32_t> candidates;
  bool stopped_early = false;
  if (filter.bound_mask.has_value() || filter.subspace.has_value()) {
    // Shape-pinned filters scan their secondary index instead of the
    // prominence buckets: the list holds exactly the records of that
    // constraint shape / measure subspace, typically a small fraction of
    // the index. A mask the index never saw has no list — zero matches.
    const BandVec* source = filter.bound_mask.has_value()
                                ? BoundList(*filter.bound_mask)
                                : SubspaceList(*filter.subspace);
    if (source != nullptr) {
      for (BandVec::Iterator it = source->begin(); !it.AtEnd(); it.Next()) {
        const uint32_t id = *it;
        const FactRecord& rec = records_[id];
        if (cursor.has_value() &&
            !TopKBefore(cursor->prominence, cursor->record_id,
                        rec.prominence, id)) {
          continue;
        }
        if (filter.Matches(rec)) candidates.push_back(id);
      }
    }
  } else {
    // Gather filtered candidates bucket by bucket, best bucket first. Any
    // record in bucket b outranks every record in buckets < b, so once a
    // finished bucket leaves us with >= k candidates the rest cannot
    // improve the page. A cursor also bounds the walk from above: buckets
    // past the cursor's hold only records with strictly greater prominence,
    // which are all at-or-before the cursor position.
    const int start = cursor.has_value()
                          ? ProminenceBucket(cursor->prominence)
                          : kProminenceBuckets - 1;
    for (int b = start; b >= 0; --b) {
      const BandVec& bucket = by_prominence_[b];
      for (BandVec::Iterator it = bucket.begin(); !it.AtEnd(); it.Next()) {
        const uint32_t id = *it;
        const FactRecord& rec = records_[id];
        if (cursor.has_value() &&
            !TopKBefore(cursor->prominence, cursor->record_id,
                        rec.prominence, id)) {
          continue;  // at or before the cursor position; already served
        }
        if (filter.Matches(rec)) candidates.push_back(id);
      }
      if (candidates.size() >= k && b > 0) {
        stopped_early = true;
        break;
      }
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [this](uint32_t a, uint32_t b) {
              return TopKBefore(records_[a].prominence, a,
                                records_[b].prominence, b);
            });
  const size_t take = std::min(k, candidates.size());
  result.record_ids.assign(candidates.begin(), candidates.begin() + take);
  if (take > 0 && (candidates.size() > take || stopped_early)) {
    const uint32_t last = result.record_ids.back();
    result.next = TopKCursor{records_[last].prominence, last};
  }
  return result;
}

TopKResult FactIndexSnapshot::TopKOrdered(
    size_t k, const FactFilter& filter,
    const std::optional<TopKCursor>& cursor) const {
  // The skyband fast path: every source list is already in TopK order, so
  // the page is the first k matches in scan order — no candidate sort — and
  // the scan stops at the first match past the page. Byte-identical to the
  // legacy path, including the `next` decision:
  //  * a (k+1)-th match anywhere (same bucket / pinned list) sets `next`,
  //    exactly like legacy's candidates.size() > take;
  //  * k matches in hand with lower buckets still unvisited sets `next`,
  //    exactly like legacy's stopped_early (which fired only for b > 0).
  TopKResult result;

  // First position of `list` strictly after the cursor. Entries sort by
  // TopKBefore, so the predicate is monotone for any cursor value.
  const auto after_cursor = [&](const BandVec& list) -> BandVec::Iterator {
    if (!cursor.has_value()) return list.begin();
    return list.LowerBound([&](uint32_t id) {
      return TopKBefore(cursor->prominence, cursor->record_id,
                        records_[id].prominence, id);
    });
  };

  bool more = false;
  // Collects matches from `begin` on until the page is full and one further
  // match proves `more`; returns true when scanning should stop.
  const auto scan = [&](BandVec::Iterator begin) -> bool {
    for (BandVec::Iterator it = begin; !it.AtEnd(); it.Next()) {
      const uint32_t id = *it;
      if (!filter.Matches(records_[id])) continue;
      if (result.record_ids.size() < k) {
        result.record_ids.push_back(id);
      } else {
        more = true;
        return true;
      }
    }
    return false;
  };

  if (filter.bound_mask.has_value() || filter.subspace.has_value()) {
    const BandVec* source = filter.bound_mask.has_value()
                                ? BoundList(*filter.bound_mask)
                                : SubspaceList(*filter.subspace);
    if (source != nullptr) scan(after_cursor(*source));
  } else {
    const int start = cursor.has_value()
                          ? ProminenceBucket(cursor->prominence)
                          : kProminenceBuckets - 1;
    for (int b = start; b >= 0; --b) {
      const BandVec& bucket = by_prominence_[b];
      // Only the cursor's own bucket can hold already-served entries:
      // every lower bucket's prominence range sits strictly below the
      // cursor's (ProminenceBucket ranges are disjoint).
      if (scan(b == start ? after_cursor(bucket) : bucket.begin())) break;
      if (result.record_ids.size() >= k && b > 0) {
        more = true;
        break;
      }
    }
  }

  if (more && !result.record_ids.empty()) {
    const uint32_t last = result.record_ids.back();
    result.next = TopKCursor{records_[last].prominence, last};
  }
  return result;
}

TopKResult FactIndexSnapshot::FactsForTuple(
    TupleId t, const FactFilter& filter, size_t k,
    const std::optional<TopKCursor>& cursor) const {
  TopKResult out;
  const uint32_t seq = ArrivalOfTuple(t);
  if (seq == kNoArrival || k == 0) return out;
  const ArrivalEntry& entry = arrivals_[seq];
  for (uint32_t i = 0; i < entry.record_count; ++i) {
    const uint32_t id = entry.record_begin + i;
    if (cursor.has_value() && id <= cursor->record_id) continue;
    if (!filter.Matches(records_[id])) continue;
    if (out.record_ids.size() == k) {
      const uint32_t last = out.record_ids.back();
      out.next = TopKCursor{records_[last].prominence, last};
      return out;
    }
    out.record_ids.push_back(id);
  }
  return out;
}

TopKResult FactIndexSnapshot::FactsInWindow(
    uint64_t first_arrival, uint64_t last_arrival, const FactFilter& filter,
    size_t k, const std::optional<TopKCursor>& cursor) const {
  TopKResult out;
  if (arrivals_.empty() || first_arrival > last_arrival || k == 0) return out;
  const uint64_t end = std::min<uint64_t>(last_arrival, arrivals_.size() - 1);
  for (uint64_t seq = first_arrival; seq <= end; ++seq) {
    const ArrivalEntry& entry = arrivals_[seq];
    // Record runs are appended in arrival order, so a run entirely at or
    // before the cursor can be skipped without touching its records.
    if (cursor.has_value() &&
        static_cast<uint64_t>(entry.record_begin) + entry.record_count <=
            static_cast<uint64_t>(cursor->record_id) + 1) {
      continue;
    }
    for (uint32_t i = 0; i < entry.record_count; ++i) {
      const uint32_t id = entry.record_begin + i;
      if (cursor.has_value() && id <= cursor->record_id) continue;
      if (!filter.Matches(records_[id])) continue;
      if (out.record_ids.size() == k) {
        const uint32_t last = out.record_ids.back();
        out.next = TopKCursor{records_[last].prominence, last};
        return out;
      }
      out.record_ids.push_back(id);
    }
  }
  return out;
}

FactIndex::FactIndex(const Relation* relation, Options options)
    : relation_(relation),
      options_(options),
      narrator_(relation, options.entity_dim) {
  SITFACT_CHECK(relation != nullptr);
  SITFACT_CHECK(options_.publish_every >= 1);
  work_.skyband_ = options_.skyband_index;
  Publish();  // Acquire() is never null, even before the first arrival
}

void FactIndex::AddRecord(const ArrivalReport& report, const SkylineFact& fact,
                          const RankedFact* ranked, uint64_t arrival_seq) {
  const auto id = static_cast<uint32_t>(work_.records_.size());
  FactRecord rec;
  rec.tuple = report.tuple;
  rec.arrival_seq = arrival_seq;
  rec.fact = fact;
  if (ranked != nullptr) {
    rec.context_size = ranked->context_size;
    rec.skyline_size = ranked->skyline_size;
    rec.prominence = ranked->prominence;
    rec.ranked = true;
    for (const RankedFact& p : report.prominent) {
      if (p.fact == fact) {
        rec.prominent = true;
        break;
      }
    }
  }

  // With the skyband serving bands on, every list stays in TopK order
  // (prominence descending, id ascending): the new record binary-searches
  // its slot — since its id is the largest, that is "after every entry with
  // prominence >= mine". Off, lists grow in record-id order and TopK sorts
  // per query (the pre-skyband behaviour, kept for the escape hatch).
  const auto ordered_insert = [this, id, &rec](BandVec* list) {
    if (!work_.skyband_) {
      list->PushBack(id);
      return;
    }
    ++work_.skyband_stats_.band_inserts;
    work_.skyband_stats_.shifted_records +=
        list->Insert(id, [this, id, &rec](uint32_t other) {
          return TopKBefore(rec.prominence, id,
                            work_.records_[other].prominence, other);
        });
  };

  ordered_insert(&work_.by_prominence_[ProminenceBucket(rec.prominence)]);
  BandVec* bound = FindList(&work_.by_bound_, fact.constraint.bound_mask());
  if (bound == nullptr) {
    work_.by_bound_.emplace_back(fact.constraint.bound_mask(), BandVec());
    bound = &work_.by_bound_.back().second;
  }
  ordered_insert(bound);
  BandVec* sub = FindList(&work_.by_subspace_, fact.subspace);
  if (sub == nullptr) {
    work_.by_subspace_.emplace_back(fact.subspace, BandVec());
    sub = &work_.by_subspace_.back().second;
  }
  ordered_insert(sub);

  if (options_.store_narrations) {
    RankedFact rf;
    if (ranked != nullptr) {
      rf = *ranked;
    } else {
      rf.fact = fact;
    }
    work_.narrations_.PushBack(narrator_.Narrate(report.tuple, rf));
  }
  work_.records_.PushBack(std::move(rec));
}

void FactIndex::ApplyArrival(const ArrivalReport& report) {
  const uint64_t arrival_seq = work_.arrivals_.size();
  const auto begin = static_cast<uint32_t>(work_.records_.size());

  // Ranked order when the engine ranked (prominence descending — the order
  // pagination serves ties in); canonical fact order otherwise.
  if (!report.ranked.empty()) {
    for (const RankedFact& rf : report.ranked) {
      AddRecord(report, rf.fact, &rf, arrival_seq);
    }
  } else {
    for (const SkylineFact& fact : report.facts) {
      AddRecord(report, fact, nullptr, arrival_seq);
    }
  }

  while (work_.tuple_to_arrival_.size() < report.tuple) {
    work_.tuple_to_arrival_.PushBack(FactIndexSnapshot::kNoArrival);
  }
  if (work_.tuple_to_arrival_.size() == report.tuple) {
    work_.tuple_to_arrival_.PushBack(static_cast<uint32_t>(arrival_seq));
  } else {
    // An engine never reuses a TupleId; seeing one again means the caller
    // replayed an arrival (at-least-once delivery). Last write wins: the
    // superseded delivery's records die with its directory entry, so no
    // query surface ever serves the same fact twice.
    const uint32_t old_seq = work_.tuple_to_arrival_[report.tuple];
    if (old_seq != FactIndexSnapshot::kNoArrival) {
      FactIndexSnapshot::ArrivalEntry& old_entry =
          work_.arrivals_.Mutate(old_seq);
      if (old_entry.live) {
        old_entry.live = false;
        for (uint32_t i = 0; i < old_entry.record_count; ++i) {
          work_.records_.Mutate(old_entry.record_begin + i).live = false;
        }
      }
    }
    work_.tuple_to_arrival_.Mutate(report.tuple) =
        static_cast<uint32_t>(arrival_seq);
  }

  FactIndexSnapshot::ArrivalEntry entry;
  entry.tuple = report.tuple;
  entry.record_begin = begin;
  entry.record_count = static_cast<uint32_t>(work_.records_.size()) - begin;
  work_.arrivals_.PushBack(entry);

  ++work_.epoch_;
  MaybePublish();
}

Status FactIndex::ApplyRemove(TupleId t) {
  const uint32_t seq = work_.tuple_to_arrival_.size() > t
                           ? work_.tuple_to_arrival_[t]
                           : FactIndexSnapshot::kNoArrival;
  if (seq == FactIndexSnapshot::kNoArrival) {
    return Status::InvalidArgument("fact index never saw tuple " +
                                   std::to_string(t));
  }
  FactIndexSnapshot::ArrivalEntry& entry = work_.arrivals_.Mutate(seq);
  if (!entry.live) {
    return Status::InvalidArgument("tuple " + std::to_string(t) +
                                   " already removed from the fact index");
  }
  entry.live = false;
  for (uint32_t i = 0; i < entry.record_count; ++i) {
    work_.records_.Mutate(entry.record_begin + i).live = false;
  }
  ++work_.epoch_;
  MaybePublish();
  return Status::Ok();
}

Status FactIndex::ApplyUpdate(TupleId removed_tuple,
                              const ArrivalReport& readded) {
  Status removed = ApplyRemove(removed_tuple);
  if (!removed.ok()) return removed;
  ApplyArrival(readded);
  return Status::Ok();
}

void FactIndex::MaybePublish() {
  if (work_.epoch_ - last_published_epoch_ >= options_.publish_every) {
    Publish();
  }
}

void FactIndex::Publish() {
  work_.records_.Seal();
  work_.narrations_.Seal();
  work_.arrivals_.Seal();
  work_.tuple_to_arrival_.Seal();
  for (auto& bucket : work_.by_prominence_) bucket.Seal();
  for (auto& [mask, list] : work_.by_bound_) list.Seal();
  for (auto& [mask, list] : work_.by_subspace_) list.Seal();

  auto snapshot = std::make_shared<const FactIndexSnapshot>(work_);
  last_published_epoch_ = work_.epoch_;
  std::lock_guard<std::mutex> lock(publish_mu_);
  published_ = std::move(snapshot);
}

std::shared_ptr<const FactIndexSnapshot> FactIndex::Acquire() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return published_;
}

}  // namespace sitfact
