#ifndef SITFACT_QUERY_FACT_INDEX_H_
#define SITFACT_QUERY_FACT_INDEX_H_

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/engine.h"
#include "core/fact.h"
#include "core/narrator.h"
#include "lattice/constraint.h"
#include "relation/relation.h"

namespace sitfact {

/// Chunked vector with structural sharing, the storage primitive behind the
/// fact index's epoch snapshots. Elements live in fixed-capacity chunks held
/// by shared_ptr; copying a CowVec copies only the chunk-pointer table, so a
/// snapshot of an N-element vector costs O(N / kChunkSize) pointer copies.
///
/// Ownership protocol (the whole concurrency argument): exactly one writer
/// thread mutates a CowVec, and only through PushBack/Mutate. Seal() marks
/// every chunk as shared; after that, the next mutation of a chunk clones it
/// first (copy-on-write), so chunks reachable from a sealed copy are never
/// written again. Readers therefore access snapshot copies without locks:
/// all data reachable from a copy taken after Seal() is immutable.
template <typename T>
class CowVec {
 public:
  static constexpr size_t kChunkSize = 256;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const T& operator[](size_t i) const {
    return (*chunks_[i / kChunkSize])[i % kChunkSize];
  }

  /// Appends one element (writer thread only). Clones the tail chunk when a
  /// sealed copy still shares it.
  void PushBack(T value) {
    const size_t chunk = size_ / kChunkSize;
    if (chunk == chunks_.size()) {
      chunks_.push_back(std::make_shared<Chunk>());
      chunks_.back()->reserve(kChunkSize);
      owned_.push_back(true);
    } else if (!owned_[chunk]) {
      CloneChunk(chunk);
    }
    chunks_[chunk]->push_back(std::move(value));
    ++size_;
  }

  /// Mutable access to element `i` (writer thread only); clones the holding
  /// chunk when it is shared with a sealed copy.
  T& Mutate(size_t i) {
    const size_t chunk = i / kChunkSize;
    if (!owned_[chunk]) CloneChunk(chunk);
    return (*chunks_[chunk])[i % kChunkSize];
  }

  /// Marks every chunk as shared. Call immediately before handing out a
  /// copy; afterwards no chunk reachable from that copy is ever mutated.
  void Seal() { owned_.assign(owned_.size(), false); }

 private:
  using Chunk = std::vector<T>;

  void CloneChunk(size_t chunk) {
    // Copy with full capacity up front: the clone happens on the append /
    // mutate hot path, and a bare vector copy would size capacity to fit
    // and reallocate again on the very next PushBack.
    auto clone = std::make_shared<Chunk>();
    clone->reserve(kChunkSize);
    clone->insert(clone->end(), chunks_[chunk]->begin(),
                  chunks_[chunk]->end());
    chunks_[chunk] = std::move(clone);
    owned_[chunk] = true;
  }

  std::vector<std::shared_ptr<Chunk>> chunks_;
  /// owned_[i] == true means chunks_[i] is private to this instance and may
  /// be written in place. Copies inherit the flags but are never mutated
  /// (snapshots are const), so the flags are only meaningful on the writer's
  /// instance.
  std::vector<bool> owned_;
  size_t size_ = 0;
};

/// Record-id list behind the serving bands (prominence buckets and shape
/// lists): chunks of ids with the same structural sharing and Seal protocol
/// as CowVec, but ordered inserts are keyed by a predicate instead of a
/// position. An insert binary-searches the chunk table by each chunk's last
/// element, shifts within that single chunk, and splits a chunk that
/// outgrows kChunkSize — O(log chunks + kChunkSize) per insert, where a
/// positional suffix shift would make band maintenance quadratic in the
/// record count (measured: ~7x on ingest at n=1500). Bands are never
/// indexed by position — readers scan in order or binary-search by key —
/// so the class exposes iterators, not operator[].
class BandVec {
 public:
  static constexpr size_t kChunkSize = 256;

  /// Forward scan position. Valid only while the owning BandVec is alive
  /// and (on the writer's instance) unmodified.
  class Iterator {
   public:
    uint32_t operator*() const { return (*vec_->chunks_[chunk_])[off_]; }
    bool AtEnd() const { return chunk_ == vec_->chunks_.size(); }
    void Next() {
      if (++off_ == vec_->chunks_[chunk_]->size()) {
        ++chunk_;
        off_ = 0;
      }
    }

   private:
    friend class BandVec;
    Iterator(const BandVec* vec, size_t chunk, size_t off)
        : vec_(vec), chunk_(chunk), off_(off) {}
    const BandVec* vec_;
    size_t chunk_;
    size_t off_;
  };

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Iterator begin() const { return Iterator(this, 0, 0); }

  /// Appends at the end (writer thread only) — the escape-hatch mode where
  /// lists grow in record-id order.
  void PushBack(uint32_t value) {
    if (chunks_.empty() || chunks_.back()->size() >= kChunkSize) {
      AppendChunk();
    } else if (!owned_.back()) {
      CloneChunk(chunks_.size() - 1);
    }
    chunks_.back()->push_back(value);
    ++size_;
  }

  /// Ordered insert (writer thread only). `sorts_before(e)` answers "does
  /// the new value order strictly before existing element e" and must be
  /// monotone along the list (false then true); the value lands at the
  /// first true position. Returns the number of entries shifted (all within
  /// one chunk).
  template <typename Pred>
  size_t Insert(uint32_t value, Pred&& sorts_before) {
    if (size_ == 0) {
      PushBack(value);
      return 0;
    }
    // First chunk whose last element the value sorts before holds the slot;
    // no such chunk means the value goes at the very end.
    size_t lo = 0;
    size_t hi = chunks_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (sorts_before(chunks_[mid]->back())) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    const size_t c = lo == chunks_.size() ? chunks_.size() - 1 : lo;
    if (!owned_[c]) CloneChunk(c);
    Chunk& chunk = *chunks_[c];
    size_t plo = 0;
    size_t phi = chunk.size();
    while (plo < phi) {
      const size_t mid = plo + (phi - plo) / 2;
      if (sorts_before(chunk[mid])) {
        phi = mid;
      } else {
        plo = mid + 1;
      }
    }
    chunk.insert(chunk.begin() + static_cast<ptrdiff_t>(plo), value);
    ++size_;
    const size_t shifted = chunk.size() - 1 - plo;
    if (chunk.size() > kChunkSize) SplitChunk(c);
    return shifted;
  }

  /// First position with `pred(element)` true; `pred` must be monotone
  /// along the list (false then true). End iterator when none.
  template <typename Pred>
  Iterator LowerBound(Pred&& pred) const {
    size_t lo = 0;
    size_t hi = chunks_.size();
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (pred(chunks_[mid]->back())) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    if (lo == chunks_.size()) return Iterator(this, lo, 0);
    const Chunk& chunk = *chunks_[lo];
    size_t plo = 0;
    size_t phi = chunk.size();
    while (plo < phi) {
      const size_t mid = plo + (phi - plo) / 2;
      if (pred(chunk[mid])) {
        phi = mid;
      } else {
        plo = mid + 1;
      }
    }
    return Iterator(this, lo, plo);
  }

  /// Marks every chunk as shared; same contract as CowVec::Seal.
  void Seal() { owned_.assign(owned_.size(), false); }

 private:
  using Chunk = std::vector<uint32_t>;

  void AppendChunk() {
    chunks_.push_back(std::make_shared<Chunk>());
    chunks_.back()->reserve(kChunkSize + 1);
    owned_.push_back(true);
  }

  void CloneChunk(size_t chunk) {
    auto clone = std::make_shared<Chunk>();
    clone->reserve(kChunkSize + 1);
    clone->insert(clone->end(), chunks_[chunk]->begin(),
                  chunks_[chunk]->end());
    chunks_[chunk] = std::move(clone);
    owned_[chunk] = true;
  }

  void SplitChunk(size_t c) {
    Chunk& left = *chunks_[c];
    auto right = std::make_shared<Chunk>();
    right->reserve(kChunkSize + 1);
    const size_t half = left.size() / 2;
    right->assign(left.begin() + static_cast<ptrdiff_t>(half), left.end());
    left.resize(half);
    chunks_.insert(chunks_.begin() + static_cast<ptrdiff_t>(c) + 1,
                   std::move(right));
    owned_.insert(owned_.begin() + static_cast<ptrdiff_t>(c) + 1, true);
  }

  std::vector<std::shared_ptr<Chunk>> chunks_;
  std::vector<bool> owned_;
  size_t size_ = 0;
};

/// One indexed fact: a (C, M) pair discovered for `tuple` at its arrival,
/// with the at-arrival prominence numbers. The index serves the stream of
/// ArrivalReports, so prominence is "as of the arrival that minted the
/// fact" — exactly what the engine reported, not a value that silently
/// drifts as later tuples change the denominators.
struct FactRecord {
  TupleId tuple = 0;
  /// Position of the minting arrival in the ingestion stream (0-based).
  uint64_t arrival_seq = 0;
  SkylineFact fact;
  uint64_t context_size = 0;   // |σ_C(R)| at arrival
  uint64_t skyline_size = 0;   // |λ_M(σ_C(R))| at arrival
  double prominence = 0.0;     // context_size / skyline_size, 0 when unranked
  /// Member of the arrival's prominent selection (top prominence >= τ).
  bool prominent = false;
  /// False when the engine ran with ranking off; the numbers above are 0.
  bool ranked = false;
  /// Cleared when the owning tuple is removed (or updated away).
  bool live = true;
};

/// Conjunctive filter over fact records; default-constructed matches every
/// live record.
struct FactFilter {
  /// Only facts minted for this tuple.
  std::optional<TupleId> tuple;
  /// Exact constraint shape: the record's bound-attribute mask must equal.
  std::optional<DimMask> bound_mask;
  /// Exact measure subspace.
  std::optional<MeasureMask> subspace;
  /// "Facts about": the record's constraint must bind at least these
  /// attribute=value pairs (Def. 5 subsumption — record ⊑ about). The
  /// newsroom query "what is prominent about LeBron" is
  /// about = (player=LeBron).
  std::optional<Constraint> about;
  /// Inclusive arrival-sequence window.
  uint64_t min_arrival = 0;
  uint64_t max_arrival = std::numeric_limits<uint64_t>::max();
  double min_prominence = 0.0;
  bool prominent_only = false;
  /// Also match records of removed tuples.
  bool include_dead = false;

  bool Matches(const FactRecord& r) const;
};

/// Resumable position within the TopK order (prominence descending, record
/// id ascending). A cursor names the last record already returned; the next
/// page starts strictly after it. Record ids never reorder and new arrivals
/// only append, so a cursor taken at epoch E remains valid at every later
/// epoch: no old record is ever skipped or repeated (new records that would
/// sort before the cursor are simply not revisited — standard forward-only
/// pagination).
struct TopKCursor {
  double prominence = 0.0;
  uint32_t record_id = 0;
};

/// One TopK page: record ids in (prominence desc, record id asc) order.
/// `next` is set when more matches may exist; a follow-up call may return an
/// empty page with next == nullopt, which ends the scan.
struct TopKResult {
  std::vector<uint32_t> record_ids;
  std::optional<TopKCursor> next;
};

/// An immutable epoch of the fact index. Readers obtain one via
/// FactIndex::Acquire() and query it without any coordination with the
/// writer: every byte reachable from a snapshot is frozen (see CowVec).
class FactIndexSnapshot {
 public:
  /// Per-arrival directory entry: the contiguous record run the arrival
  /// appended.
  struct ArrivalEntry {
    TupleId tuple = 0;
    uint32_t record_begin = 0;
    uint32_t record_count = 0;
    bool live = true;
  };

  static constexpr uint32_t kNoArrival =
      std::numeric_limits<uint32_t>::max();
  static constexpr int kProminenceBuckets = 64;

  /// Maintenance counters of the skyband serving bands, published with each
  /// epoch (cumulative since index construction; /statz renders them).
  struct SkybandStats {
    uint64_t band_inserts = 0;     ///< sorted insertions into serving bands
    uint64_t shifted_records = 0;  ///< entries shifted to keep band order
  };

  /// Mutations applied when this epoch was published.
  uint64_t epoch() const { return epoch_; }
  /// Arrivals folded in (== the next arrival_seq).
  uint64_t arrivals() const { return arrivals_.size(); }
  size_t fact_count() const { return records_.size(); }

  const FactRecord& record(uint32_t id) const { return records_[id]; }
  /// Pre-rendered narration for record `id`; empty when narration storage
  /// was off.
  const std::string& narration(uint32_t id) const;

  /// Top-k by at-arrival prominence (descending; ties broken by record id
  /// ascending, i.e. arrival order). Served from the log2-bucketed
  /// prominence index: buckets are walked best-first and the walk stops as
  /// soon as a finished bucket has already produced k matches.
  TopKResult TopK(size_t k, const FactFilter& filter = {},
                  const std::optional<TopKCursor>& cursor =
                      std::nullopt) const;

  /// One page of the records minted at `t`'s arrival, in report (record id
  /// ascending) order: start strictly after the cursor's record id, take up
  /// to k, set `next` exactly when a further match exists. Same cursor
  /// contract as TopK (only `record_id` orders these scans).
  TopKResult FactsForTuple(TupleId t, const FactFilter& filter, size_t k,
                           const std::optional<TopKCursor>& cursor =
                               std::nullopt) const;

  /// One page of the records minted by arrivals in
  /// [first_arrival, last_arrival] (inclusive; clamped to the snapshot's
  /// range), record id ascending; same cursor contract as FactsForTuple.
  TopKResult FactsInWindow(uint64_t first_arrival, uint64_t last_arrival,
                           const FactFilter& filter, size_t k,
                           const std::optional<TopKCursor>& cursor =
                               std::nullopt) const;

  /// Directory access for consistency checks (tests) and window math.
  size_t arrival_count() const { return arrivals_.size(); }
  const ArrivalEntry& arrival(uint64_t seq) const { return arrivals_[seq]; }
  /// Arrival seq of tuple `t`, or kNoArrival.
  uint32_t ArrivalOfTuple(TupleId t) const;

  /// True when this epoch's prominence buckets and shape lists are kept in
  /// TopK order (the skyband serving bands): TopK walks them with an early
  /// exit and no per-query sort. False reproduces the pre-skyband scan.
  bool skyband_enabled() const { return skyband_; }
  const SkybandStats& skyband_stats() const { return skyband_stats_; }

 private:
  friend class FactIndex;

  CowVec<FactRecord> records_;
  /// Parallel to records_; empty strings when narration storage is off.
  CowVec<std::string> narrations_;
  CowVec<ArrivalEntry> arrivals_;
  /// TupleId -> arrival seq (kNoArrival for ids the index never saw).
  CowVec<uint32_t> tuple_to_arrival_;
  /// Record ids bucketed by floor(log2(prominence)) + 1 (bucket 0 holds
  /// prominence < 1, i.e. unranked records). Bucket ranges are disjoint, so
  /// walking buckets high-to-low visits records in coarse prominence order.
  std::array<BandVec, kProminenceBuckets> by_prominence_;
  /// Record ids per constraint bound mask / measure subspace: a TopK whose
  /// filter pins the shape scans only the matching list instead of the
  /// prominence buckets.
  std::vector<std::pair<DimMask, BandVec>> by_bound_;
  std::vector<std::pair<MeasureMask, BandVec>> by_subspace_;
  uint64_t epoch_ = 0;
  /// Lists above are TopK-sorted (skyband serving bands) when set; in
  /// insertion (record id) order otherwise.
  bool skyband_ = false;
  SkybandStats skyband_stats_;

  const BandVec* BoundList(DimMask mask) const;
  const BandVec* SubspaceList(MeasureMask mask) const;
  TopKResult TopKOrdered(size_t k, const FactFilter& filter,
                         const std::optional<TopKCursor>& cursor) const;
};

/// Secondary index over the stream of discovered facts, maintained
/// incrementally by the single ingestion thread and served to any number of
/// concurrent readers through epoch-versioned immutable snapshots.
///
/// Threading contract: exactly one writer thread calls
/// ApplyArrival/ApplyRemove/ApplyUpdate/Publish (the same thread that drives
/// the discovery engine — FactFeed's worker when the feed is used). Any
/// thread may call Acquire() at any time; the snapshot it returns is frozen
/// forever, so readers never observe a torn epoch. Writer-side cost per
/// publish is O(chunks) pointer copies, not O(facts) — see CowVec.
class FactIndex {
 public:
  struct Options {
    /// Publish a fresh epoch every N applied mutations (>= 1). Readers see
    /// at most N-1 mutations of lag; 1 publishes after every op.
    uint64_t publish_every = 1;
    /// Pre-render a narration per record at apply time (the writer thread
    /// owns the Relation, so rendering later from reader threads would race
    /// ingestion; storing the string is what makes Explain snapshot-safe).
    bool store_narrations = true;
    /// Dimension naming the acting entity for narration; -1 for none.
    int entity_dim = -1;
    /// Maintain the prominence buckets and shape lists in TopK order (the
    /// skyband serving bands): each AddRecord pays a binary-searched
    /// insertion so TopK never sorts and stops at the k-th match. Off
    /// reproduces the append-order lists and the scan-then-sort TopK;
    /// results are byte-identical either way (pinned by the fuzz
    /// differential). FactService resolves SITFACT_SKYBAND_INDEX into this.
    bool skyband_index = true;
  };

  /// `relation` must outlive the index and is read only from the writer
  /// thread (narration rendering at apply time).
  FactIndex(const Relation* relation, Options options);
  explicit FactIndex(const Relation* relation)
      : FactIndex(relation, Options()) {}

  FactIndex(const FactIndex&) = delete;
  FactIndex& operator=(const FactIndex&) = delete;

  /// Folds one arrival's report into the index. Records are stored in
  /// report order: the ranked list when present (prominence descending),
  /// the canonical fact list otherwise.
  void ApplyArrival(const ArrivalReport& report);

  /// Marks tuple `t`'s records dead. Fails when the index never saw `t` or
  /// it is already dead.
  Status ApplyRemove(TupleId t);

  /// Update = remove + re-append (mirrors the engines): kills
  /// `removed_tuple`'s records and folds in the replacement arrival.
  Status ApplyUpdate(TupleId removed_tuple, const ArrivalReport& readded);

  /// Publishes the current state as a fresh epoch regardless of
  /// publish_every (e.g. before a planned handoff).
  void Publish();

  /// Current epoch snapshot; never null. Any thread.
  std::shared_ptr<const FactIndexSnapshot> Acquire() const;

  /// Mutations applied so far (writer thread only; readers use
  /// snapshot->epoch()).
  uint64_t applied_ops() const { return work_.epoch_; }

 private:
  void MaybePublish();
  void AddRecord(const ArrivalReport& report, const SkylineFact& fact,
                 const RankedFact* ranked, uint64_t arrival_seq);

  const Relation* relation_;
  Options options_;
  FactNarrator narrator_;

  /// Writer-private builder state; published copies share its chunks.
  FactIndexSnapshot work_;
  uint64_t last_published_epoch_ = 0;

  mutable std::mutex publish_mu_;
  std::shared_ptr<const FactIndexSnapshot> published_;
};

}  // namespace sitfact

#endif  // SITFACT_QUERY_FACT_INDEX_H_
