#include "lattice/subspace_universe.h"

#include <algorithm>

#include "common/bits.h"
#include "common/logging.h"

namespace sitfact {

SubspaceUniverse::SubspaceUniverse(int num_measures, int max_size)
    : num_measures_(num_measures), max_size_(max_size) {
  SITFACT_CHECK(num_measures >= 1 && num_measures <= kMaxMeasures);
  SITFACT_CHECK(max_size >= 1);
  full_mask_ = FullMask(num_measures);
  for (MeasureMask m = 1; m <= full_mask_; ++m) {
    if (PopCount(m) <= max_size) masks_.push_back(m);
  }
  std::stable_sort(masks_.begin(), masks_.end(),
                   [](MeasureMask a, MeasureMask b) {
                     int pa = PopCount(a);
                     int pb = PopCount(b);
                     if (pa != pb) return pa > pb;
                     return a < b;
                   });
  index_.assign(static_cast<size_t>(full_mask_) + 1, -1);
  for (int i = 0; i < size(); ++i) index_[masks_[i]] = i;
}

}  // namespace sitfact
