#include "lattice/constraint.h"

#include <vector>

#include "common/binary_io.h"
#include "common/bits.h"
#include "common/logging.h"

namespace sitfact {

Constraint Constraint::ForTuple(const Relation& r, TupleId t, DimMask bound) {
  Constraint c;
  c.bound_ = bound;
  c.num_dims_ = static_cast<uint8_t>(r.schema().num_dimensions());
  SITFACT_DCHECK(IsSubsetOf(bound, FullMask(c.num_dims_)));
  ForEachBit(bound, [&](int d) { c.values_[d] = r.dim(t, d); });
  return c;
}

Constraint Constraint::Top(int num_dims) {
  Constraint c;
  c.num_dims_ = static_cast<uint8_t>(num_dims);
  return c;
}

Constraint Constraint::FromBoundValues(int num_dims, DimMask bound,
                                       const std::vector<ValueId>& values) {
  Constraint c;
  c.num_dims_ = static_cast<uint8_t>(num_dims);
  c.bound_ = bound;
  SITFACT_CHECK(IsSubsetOf(bound, FullMask(num_dims)));
  SITFACT_CHECK(static_cast<int>(values.size()) == PopCount(bound));
  size_t i = 0;
  ForEachBit(bound, [&](int d) { c.values_[d] = values[i++]; });
  return c;
}

int Constraint::BoundCount() const { return PopCount(bound_); }

bool Constraint::SatisfiedBy(const Relation& r, TupleId t) const {
  bool ok = true;
  ForEachBit(bound_, [&](int d) {
    if (r.dim(t, d) != values_[d]) ok = false;
  });
  return ok;
}

Constraint Constraint::Restrict(DimMask keep) const {
  Constraint out;
  out.num_dims_ = num_dims_;
  out.bound_ = bound_ & keep;
  ForEachBit(out.bound_, [&](int d) { out.values_[d] = values_[d]; });
  return out;
}

bool Constraint::SubsumedByOrEqual(const Constraint& other) const {
  if (!IsSubsetOf(other.bound_, bound_)) return false;
  bool ok = true;
  ForEachBit(other.bound_, [&](int d) {
    if (values_[d] != other.values_[d]) ok = false;
  });
  return ok;
}

std::string Constraint::ToString(const Relation& r) const {
  std::string out = "<";
  for (int d = 0; d < num_dims_; ++d) {
    if (d > 0) out += ", ";
    if (IsBound(d)) {
      out += r.dictionary(d).Decode(values_[d]);
    } else {
      out += "*";
    }
  }
  out += ">";
  return out;
}

std::string Constraint::ToPredicateString(const Relation& r) const {
  if (bound_ == 0) return "(no constraint)";
  std::string out;
  ForEachBit(bound_, [&](int d) {
    if (!out.empty()) out += " ∧ ";
    out += r.schema().dimension(d).name;
    out += "=";
    out += r.dictionary(d).Decode(values_[d]);
  });
  return out;
}

uint64_t Constraint::Hash() const {
  uint64_t h = Mix64(bound_ | (static_cast<uint64_t>(num_dims_) << 32));
  ForEachBit(bound_, [&](int d) {
    h = HashCombine(h, (static_cast<uint64_t>(d) << 32) | values_[d]);
  });
  return h;
}

void SerializeConstraint(BinaryWriter* w, const Constraint& c) {
  w->WriteU32(c.bound_mask());
  ForEachBit(c.bound_mask(), [&](int d) { w->WriteU32(c.value(d)); });
}

Constraint DeserializeConstraint(BinaryReader* r, int num_dims) {
  DimMask bound = r->ReadU32();
  // Any mask numerically above FullMask has a bit beyond the lattice (a
  // popcount check alone would pass e.g. 0b1000 for num_dims=3 and trip the
  // invariant CHECK in FromBoundValues on corrupt input).
  if (!r->CheckCount(bound, FullMask(num_dims), "constraint bound mask")) {
    return Constraint::Top(num_dims);
  }
  std::vector<ValueId> values;
  values.reserve(static_cast<size_t>(PopCount(bound)));
  ForEachBit(bound, [&](int) { values.push_back(r->ReadU32()); });
  if (!r->ok()) return Constraint::Top(num_dims);
  return Constraint::FromBoundValues(num_dims, bound, values);
}

}  // namespace sitfact
