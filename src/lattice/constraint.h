#ifndef SITFACT_LATTICE_CONSTRAINT_H_
#define SITFACT_LATTICE_CONSTRAINT_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/hash.h"
#include "common/types.h"
#include "relation/relation.h"

namespace sitfact {

/// A conjunctive constraint over the dimension space (Def. 1):
/// `d1=v1 ∧ d2=v2 ∧ ...` with unbound attributes written `*`. Internally a
/// bound-attribute bit mask plus the bound ValueIds (slots for unbound
/// attributes are zeroed so equality/hashing can treat the array uniformly).
///
/// Within the tuple-satisfied lattice C^t (Def. 4/7) a constraint is fully
/// identified by its DimMask alone — every bound attribute carries t's value.
/// The algorithms therefore traverse DimMasks and materialize a Constraint
/// only when touching the global µ store; `ForTuple` performs that lift.
class Constraint {
 public:
  Constraint() : bound_(0), num_dims_(0) { values_.fill(0); }

  /// The constraint over `bound` attributes with the values of tuple `t`.
  static Constraint ForTuple(const Relation& r, TupleId t, DimMask bound);

  /// The most general constraint ⊤ = <*,*,...,*>.
  static Constraint Top(int num_dims);

  /// Rebuilds a constraint from its serialized parts: `values[i]` is the
  /// ValueId for the i-th set bit of `bound` (ascending). Snapshot decoding.
  static Constraint FromBoundValues(int num_dims, DimMask bound,
                                    const std::vector<ValueId>& values);

  DimMask bound_mask() const { return bound_; }
  int num_dims() const { return num_dims_; }

  /// Number of bound attributes, the paper's bound(C).
  int BoundCount() const;

  bool IsBound(int d) const { return (bound_ >> d) & 1u; }

  /// Value of dimension `d`; kUnboundValue when unbound.
  ValueId value(int d) const {
    return IsBound(d) ? values_[d] : kUnboundValue;
  }

  /// True iff tuple `t` satisfies this constraint (t.d_i = v_i on all bound
  /// attributes, Def. 4).
  bool SatisfiedBy(const Relation& r, TupleId t) const;

  /// The ancestor constraint binding only `keep ∩ bound_mask()` attributes,
  /// with this constraint's values. Restrict(sub) for sub ⊆ bound_mask()
  /// enumerates the ancestors A_C of Def. 6.
  Constraint Restrict(DimMask keep) const;

  /// Def. 5: this E other (this is subsumed by or equal to other) iff every
  /// attribute bound in `other` is bound here with the same value. `other`
  /// is the more general constraint.
  bool SubsumedByOrEqual(const Constraint& other) const;

  /// Strict subsumption (this ⊲ other).
  bool SubsumedBy(const Constraint& other) const {
    return *this != other && SubsumedByOrEqual(other);
  }

  /// Rendering like `<a1, *, c1>` using dictionary lookups; `<*>`-only
  /// constraints render as `<*, *, ...>` (the paper's ⊤).
  std::string ToString(const Relation& r) const;

  /// Compact conjunctive rendering like `team=Celtics ∧ opp_team=Nets`, or
  /// "(no constraint)" for ⊤.
  std::string ToPredicateString(const Relation& r) const;

  uint64_t Hash() const;

  friend bool operator==(const Constraint& a, const Constraint& b) {
    return a.bound_ == b.bound_ && a.num_dims_ == b.num_dims_ &&
           a.values_ == b.values_;
  }
  friend bool operator!=(const Constraint& a, const Constraint& b) {
    return !(a == b);
  }

  /// Total order for canonical sorting of fact lists (mask first, then
  /// values); not semantically meaningful.
  friend bool operator<(const Constraint& a, const Constraint& b) {
    if (a.bound_ != b.bound_) return a.bound_ < b.bound_;
    return a.values_ < b.values_;
  }

 private:
  DimMask bound_;
  uint8_t num_dims_;
  std::array<ValueId, kMaxDimensions> values_;
};

struct ConstraintHash {
  size_t operator()(const Constraint& c) const {
    return static_cast<size_t>(c.Hash());
  }
};

class BinaryWriter;
class BinaryReader;

/// Wire form shared by snapshots and the WAL: bound mask (u32) followed by
/// one ValueId (u32) per set bit, ascending.
void SerializeConstraint(BinaryWriter* w, const Constraint& c);

/// Decodes what SerializeConstraint wrote. A bound count exceeding
/// `num_dims` latches Corruption into the reader and returns ⊤.
Constraint DeserializeConstraint(BinaryReader* r, int num_dims);

}  // namespace sitfact

#endif  // SITFACT_LATTICE_CONSTRAINT_H_
