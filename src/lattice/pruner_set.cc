#include "lattice/pruner_set.h"

#include <cstddef>

#include "common/bits.h"

namespace sitfact {

void PrunerSet::Add(DimMask agree_mask) {
  size_t keep = 0;
  for (size_t i = 0; i < pruners_.size(); ++i) {
    if (IsSubsetOf(agree_mask, pruners_[i])) {
      return;  // Already covered by an equal-or-larger pruner.
    }
    if (!IsSubsetOf(pruners_[i], agree_mask)) {
      pruners_[keep++] = pruners_[i];  // Keep incomparable pruners.
    }
  }
  pruners_.resize(keep);
  pruners_.push_back(agree_mask);
}

bool PrunerSet::IsPruned(DimMask mask) const {
  for (DimMask p : pruners_) {
    if (IsSubsetOf(mask, p)) return true;
  }
  return false;
}

}  // namespace sitfact
