#ifndef SITFACT_LATTICE_CONSTRAINT_ENUMERATOR_H_
#define SITFACT_LATTICE_CONSTRAINT_ENUMERATOR_H_

#include <vector>

#include "common/types.h"

namespace sitfact {

/// The paper's Algorithm 1 ("Find C^t"), expressed over DimMasks: enumerates
/// every constraint satisfied by a tuple, from ⊤ (mask 0) downward, each
/// exactly once, in a breadth-first order. Returned masks are the bound sets;
/// the caller lifts them to Constraints with Constraint::ForTuple.
///
/// `max_bound` is the paper's d̂: masks with more than `max_bound` bound
/// attributes are skipped (pass `num_dims` for the untruncated lattice).
std::vector<DimMask> EnumerateTupleConstraints(int num_dims, int max_bound);

/// All masks over `num_dims` attributes with popcount <= max_bound, in
/// ascending popcount order (ties by numeric value). This is the visit order
/// used by the top-down algorithms (ancestors strictly before descendants).
std::vector<DimMask> MasksByAscendingBound(int num_dims, int max_bound);

/// Same masks in descending popcount order (bottom-up visit order: the
/// minimal elements of the truncated lattice first).
std::vector<DimMask> MasksByDescendingBound(int num_dims, int max_bound);

}  // namespace sitfact

#endif  // SITFACT_LATTICE_CONSTRAINT_ENUMERATOR_H_
