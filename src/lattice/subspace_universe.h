#ifndef SITFACT_LATTICE_SUBSPACE_UNIVERSE_H_
#define SITFACT_LATTICE_SUBSPACE_UNIVERSE_H_

#include <vector>

#include "common/types.h"

namespace sitfact {

/// The measure subspaces an experiment considers: every non-empty
/// M ⊆ {m1..ms} with |M| <= max_size (the paper's m̂). Provides a dense
/// index so per-subspace state (e.g. the pruned[C][M] matrix of Alg. 6) can
/// live in flat arrays.
class SubspaceUniverse {
 public:
  SubspaceUniverse(int num_measures, int max_size);

  int num_measures() const { return num_measures_; }
  int max_size() const { return max_size_; }

  /// All admissible subspace masks, descending by size (full/largest spaces
  /// first; the sharing algorithms handle the full space before subspaces).
  const std::vector<MeasureMask>& masks() const { return masks_; }

  /// Number of admissible subspaces.
  int size() const { return static_cast<int>(masks_.size()); }

  /// Dense index of `mask` in [0, size()), or -1 if not admissible.
  int IndexOf(MeasureMask mask) const {
    return mask < index_.size() ? index_[mask] : -1;
  }

  /// The full measure space mask (which may exceed max_size; the sharing
  /// algorithms always traverse it even when it is not reported).
  MeasureMask full_mask() const { return full_mask_; }

  /// True iff the full space is itself an admissible (reported) subspace.
  bool FullSpaceAdmissible() const { return IndexOf(full_mask_) >= 0; }

 private:
  int num_measures_;
  int max_size_;
  MeasureMask full_mask_;
  std::vector<MeasureMask> masks_;
  std::vector<int> index_;  // mask -> dense index or -1
};

}  // namespace sitfact

#endif  // SITFACT_LATTICE_SUBSPACE_UNIVERSE_H_
