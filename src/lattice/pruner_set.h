#ifndef SITFACT_LATTICE_PRUNER_SET_H_
#define SITFACT_LATTICE_PRUNER_SET_H_

#include <vector>

#include "common/types.h"

namespace sitfact {

/// Records constraint pruning (Prop. 3) as an antichain of "pruner" masks.
///
/// When a dominating tuple t' is found, every constraint in C^{t,t'} — i.e.
/// every mask that is a subset of agree(t, t') — is disqualified. Instead of
/// flagging up to 2^d lattice nodes eagerly, the agree mask is recorded and
/// `IsPruned(c)` tests `∃ pruner p : c ⊆ p` lazily. Only maximal pruners are
/// kept (a subset pruner adds nothing), so the set stays tiny in practice.
///
/// The pruned region is down-closed in subset order (= up-closed towards
/// lattice ancestors): if c is pruned, every subset of c is pruned too.
class PrunerSet {
 public:
  PrunerSet() = default;

  /// Registers that all subsets of `agree_mask` are pruned.
  void Add(DimMask agree_mask);

  /// True iff `mask` is a subset of some registered pruner.
  bool IsPruned(DimMask mask) const;

  /// True iff no pruner has been registered.
  bool empty() const { return pruners_.empty(); }

  void Clear() { pruners_.clear(); }

  /// The maximal pruner antichain (for tests / diagnostics).
  const std::vector<DimMask>& pruners() const { return pruners_; }

 private:
  std::vector<DimMask> pruners_;
};

}  // namespace sitfact

#endif  // SITFACT_LATTICE_PRUNER_SET_H_
