#include "lattice/constraint_enumerator.h"

#include <algorithm>
#include <deque>

#include "common/bits.h"
#include "common/logging.h"

namespace sitfact {

std::vector<DimMask> EnumerateTupleConstraints(int num_dims, int max_bound) {
  SITFACT_CHECK(num_dims >= 1 && num_dims <= kMaxDimensions);
  std::vector<DimMask> result;
  // Faithful transcription of Alg. 1. The queue starts at ⊤; a dequeued
  // constraint C spawns C' = C with d_i bound, for i from the highest
  // attribute down, stopping at the first already-bound attribute. This
  // generates each mask exactly once (each mask is produced only by its
  // lowest-extension parent).
  std::deque<DimMask> queue;
  queue.push_back(0);
  while (!queue.empty()) {
    DimMask c = queue.front();
    queue.pop_front();
    result.push_back(c);
    for (int i = num_dims - 1; i >= 0; --i) {
      if ((c >> i) & 1u) break;  // Alg. 1 line 7: stop at first bound attr.
      DimMask child = c | (1u << i);
      if (PopCount(child) <= max_bound) queue.push_back(child);
    }
  }
  return result;
}

namespace {

std::vector<DimMask> MasksSortedByBound(int num_dims, int max_bound,
                                        bool ascending) {
  SITFACT_CHECK(num_dims >= 1 && num_dims <= kMaxDimensions);
  std::vector<DimMask> masks;
  DimMask full = FullMask(num_dims);
  for (DimMask m = 0; m <= full; ++m) {
    if (PopCount(m) <= max_bound) masks.push_back(m);
  }
  std::stable_sort(masks.begin(), masks.end(),
                   [ascending](DimMask a, DimMask b) {
                     int pa = PopCount(a);
                     int pb = PopCount(b);
                     if (pa != pb) return ascending ? pa < pb : pa > pb;
                     return a < b;
                   });
  return masks;
}

}  // namespace

std::vector<DimMask> MasksByAscendingBound(int num_dims, int max_bound) {
  return MasksSortedByBound(num_dims, max_bound, /*ascending=*/true);
}

std::vector<DimMask> MasksByDescendingBound(int num_dims, int max_bound) {
  return MasksSortedByBound(num_dims, max_bound, /*ascending=*/false);
}

}  // namespace sitfact
