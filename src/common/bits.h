#ifndef SITFACT_COMMON_BITS_H_
#define SITFACT_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace sitfact {

/// Number of set bits.
inline int PopCount(uint32_t mask) { return std::popcount(mask); }

/// True iff `sub` is a (not necessarily proper) subset of `super`.
inline bool IsSubsetOf(uint32_t sub, uint32_t super) {
  return (sub & ~super) == 0;
}

/// True iff `sub` is a proper subset of `super`.
inline bool IsProperSubsetOf(uint32_t sub, uint32_t super) {
  return sub != super && IsSubsetOf(sub, super);
}

/// Index of the lowest set bit; undefined for 0.
inline int LowestBit(uint32_t mask) { return std::countr_zero(mask); }

/// Full mask over the lowest `n` bits.
inline uint32_t FullMask(int n) {
  return n >= 32 ? 0xFFFFFFFFu : ((1u << n) - 1u);
}

/// Calls `fn(int bit)` for every set bit of `mask`, lowest first.
template <typename Fn>
void ForEachBit(uint32_t mask, Fn&& fn) {
  while (mask != 0) {
    int bit = std::countr_zero(mask);
    fn(bit);
    mask &= mask - 1;
  }
}

/// Calls `fn(uint32_t submask)` for every subset of `mask`, including 0 and
/// `mask` itself, in the standard descending submask-enumeration order.
template <typename Fn>
void ForEachSubset(uint32_t mask, Fn&& fn) {
  uint32_t sub = mask;
  while (true) {
    fn(sub);
    if (sub == 0) break;
    sub = (sub - 1) & mask;
  }
}

/// Iterates subsets of `mask` that are proper subsets (excludes `mask`).
template <typename Fn>
void ForEachProperSubset(uint32_t mask, Fn&& fn) {
  ForEachSubset(mask, [&](uint32_t sub) {
    if (sub != mask) fn(sub);
  });
}

}  // namespace sitfact

#endif  // SITFACT_COMMON_BITS_H_
