#include "common/csv.h"

namespace sitfact {

bool CsvNeedsQuoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string CsvQuote(const std::string& s) {
  if (!CsvNeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status SplitCsvLine(const std::string& line, std::vector<std::string>* out) {
  out->clear();
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out->push_back(std::move(field));
      field.clear();
    } else {
      field += c;
    }
  }
  if (in_quotes) return Status::Corruption("unterminated quote in CSV line");
  out->push_back(std::move(field));
  return Status::Ok();
}

}  // namespace sitfact
