#ifndef SITFACT_COMMON_TIMER_H_
#define SITFACT_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace sitfact {

/// Monotonic wall-clock stopwatch used by the bench harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sitfact

#endif  // SITFACT_COMMON_TIMER_H_
