#include "common/binary_io.h"

#include <cstring>

namespace sitfact {

namespace {

// Maximum sane length for a length-prefixed string in a snapshot; attribute
// names and algorithm names are all short.
constexpr uint32_t kMaxStringLen = 1u << 20;

}  // namespace

BinaryWriter::BinaryWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for write: " + path);
  }
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryWriter::WriteRaw(const void* data, size_t len) {
  if (!status_.ok() || len == 0) return;
  if (std::fwrite(data, 1, len, file_) != len) {
    status_ = Status::IoError("write failed: " + path_);
    return;
  }
  crc_.Update(data, len);
}

void BinaryWriter::WriteU32(uint32_t v) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  WriteRaw(buf, sizeof(buf));
}

void BinaryWriter::WriteU64(uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
  WriteRaw(buf, sizeof(buf));
}

void BinaryWriter::WriteF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteChecksum() {
  if (!status_.ok()) return;
  uint32_t value = crc_.value();
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<unsigned char>(value >> (8 * i));
  }
  // Bypass WriteRaw so the checksum does not checksum itself.
  if (std::fwrite(buf, 1, sizeof(buf), file_) != sizeof(buf)) {
    status_ = Status::IoError("write failed: " + path_);
  }
}

Status BinaryWriter::Close() {
  if (file_ != nullptr) {
    if (std::fflush(file_) != 0 && status_.ok()) {
      status_ = Status::IoError("flush failed: " + path_);
    }
    std::fclose(file_);
    file_ = nullptr;
  }
  return status_;
}

BinaryReader::BinaryReader(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open for read: " + path);
  }
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

void BinaryReader::ReadRaw(void* data, size_t len) {
  if (!status_.ok()) {
    std::memset(data, 0, len);
    return;
  }
  if (len == 0) return;
  if (std::fread(data, 1, len, file_) != len) {
    std::memset(data, 0, len);
    status_ = Status::Corruption("truncated file: " + path_);
    return;
  }
  crc_.Update(data, len);
}

uint8_t BinaryReader::ReadU8() {
  uint8_t v = 0;
  ReadRaw(&v, 1);
  return v;
}

uint32_t BinaryReader::ReadU32() {
  unsigned char buf[4];
  ReadRaw(buf, sizeof(buf));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buf[i]) << (8 * i);
  return v;
}

uint64_t BinaryReader::ReadU64() {
  unsigned char buf[8];
  ReadRaw(buf, sizeof(buf));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  return v;
}

double BinaryReader::ReadF64() {
  uint64_t bits = ReadU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  uint32_t len = ReadU32();
  if (!CheckCount(len, kMaxStringLen, "string length")) return "";
  std::string s(len, '\0');
  ReadRaw(s.data(), len);
  return s;
}

void BinaryReader::VerifyChecksum() {
  if (!status_.ok()) return;
  uint32_t expected = crc_.value();
  unsigned char buf[4];
  if (std::fread(buf, 1, sizeof(buf), file_) != sizeof(buf)) {
    status_ = Status::Corruption("missing checksum: " + path_);
    return;
  }
  uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) stored |= static_cast<uint32_t>(buf[i]) << (8 * i);
  if (stored != expected) {
    status_ = Status::Corruption("checksum mismatch: " + path_);
  }
}

bool BinaryReader::CheckCount(uint64_t count, uint64_t limit,
                              const char* what) {
  if (!status_.ok()) return false;
  if (count > limit) {
    status_ = Status::Corruption(std::string("implausible ") + what + " (" +
                                 std::to_string(count) + ") in " + path_);
    return false;
  }
  return true;
}

}  // namespace sitfact
