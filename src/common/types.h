#ifndef SITFACT_COMMON_TYPES_H_
#define SITFACT_COMMON_TYPES_H_

#include <cstdint>

namespace sitfact {

/// Index of a tuple within a Relation (append order, 0-based).
using TupleId = uint32_t;

/// Dictionary-encoded dimension value. `kUnboundValue` is reserved for the
/// wildcard `*` in constraints and never produced by a Dictionary.
using ValueId = uint32_t;
inline constexpr ValueId kUnboundValue = 0xFFFFFFFFu;

/// Bit set over dimension attributes; bit `i` set means dimension `i` is
/// bound in a constraint (or, in agreement masks, that two tuples share the
/// value of dimension `i`).
using DimMask = uint32_t;

/// Bit set over measure attributes; bit `j` set means measure `j` belongs to
/// the measure subspace.
using MeasureMask = uint32_t;

/// Hard caps so per-arrival lattice state fits in dense arrays. The paper
/// evaluates d in [4,7] and m in [4,7]; 16 leaves generous headroom while
/// keeping `2^d` lattice enumeration tractable.
inline constexpr int kMaxDimensions = 16;
inline constexpr int kMaxMeasures = 16;

}  // namespace sitfact

#endif  // SITFACT_COMMON_TYPES_H_
