#ifndef SITFACT_COMMON_CPU_H_
#define SITFACT_COMMON_CPU_H_

namespace sitfact {

/// Runtime CPU capability detection for the SIMD dominance kernels
/// (skyline/dominance_simd.h). Tiers are ordered: every tier implies all
/// the lower ones, so "clamp to detected" is a simple min.
enum class SimdTier {
  kScalar = 0,  // portable C++ — also the bit-exact oracle the tests pin
  kSse2 = 1,    // 2 doubles / 4 u32 per instruction
  kAvx2 = 2,    // 4 doubles / 8 u32 per instruction
};

/// Highest tier the running CPU supports, from cpuid. Scalar on non-x86.
SimdTier DetectSimdTier();

/// Tier selection given an override string (the SITFACT_SIMD environment
/// variable: "scalar" | "sse2" | "avx2") and the detected capability.
/// Unknown or empty overrides fall back to `detected`; an override above
/// the machine's capability is clamped down to `detected` rather than
/// crashing on an illegal instruction. Split out pure so the policy is
/// unit-testable without setenv games.
SimdTier ResolveSimdTier(const char* override_str, SimdTier detected);

/// The tier the dominance kernels dispatch to: ResolveSimdTier of
/// getenv("SITFACT_SIMD") and DetectSimdTier(), resolved once on first use
/// and cached for the life of the process.
SimdTier ActiveSimdTier();

/// Lower-case tier name ("scalar" / "sse2" / "avx2"), for logs and the
/// bench JSON trajectory.
const char* SimdTierName(SimdTier tier);

}  // namespace sitfact

#endif  // SITFACT_COMMON_CPU_H_
