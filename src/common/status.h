#ifndef SITFACT_COMMON_STATUS_H_
#define SITFACT_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/logging.h"

namespace sitfact {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kUnimplemented,
};

/// Lightweight absl::Status-style error carrier. The library does not use
/// exceptions; operations that can fail on external input (file IO, CSV
/// parsing, schema validation) return Status / StatusOr.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error, in the style of absl::StatusOr. T need not be
/// default-constructible.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SITFACT_CHECK_MSG(!status_.ok(), "StatusOr built from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SITFACT_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    SITFACT_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    SITFACT_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

const char* StatusCodeName(StatusCode code);

}  // namespace sitfact

#endif  // SITFACT_COMMON_STATUS_H_
