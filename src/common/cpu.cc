#include "common/cpu.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace sitfact {
namespace {

#if defined(__x86_64__) || defined(__i386__)

/// cpuid leaf 7 subleaf 0, EBX bit 5: AVX2. Checked together with the
/// OSXSAVE/XGETBV dance: AVX registers are only usable when the OS saves
/// the YMM state, so AVX2 without OS support must report as SSE2.
bool OsSavesYmm() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  constexpr unsigned kOsxsave = 1u << 27;
  constexpr unsigned kAvx = 1u << 28;
  if ((ecx & kOsxsave) == 0 || (ecx & kAvx) == 0) return false;
  unsigned xcr0_lo, xcr0_hi;
  __asm__("xgetbv" : "=a"(xcr0_lo), "=d"(xcr0_hi) : "c"(0));
  return (xcr0_lo & 0x6) == 0x6;  // XMM and YMM state enabled
}

bool HasAvx2() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  constexpr unsigned kAvx2 = 1u << 5;
  return (ebx & kAvx2) != 0 && OsSavesYmm();
}

bool HasSse2() {
#if defined(__x86_64__)
  return true;  // SSE2 is architectural on x86-64
#else
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  constexpr unsigned kSse2 = 1u << 26;
  return (edx & kSse2) != 0;
#endif
}

#endif  // x86

}  // namespace

SimdTier DetectSimdTier() {
#if defined(__x86_64__) || defined(__i386__)
  if (HasAvx2()) return SimdTier::kAvx2;
  if (HasSse2()) return SimdTier::kSse2;
#endif
  return SimdTier::kScalar;
}

SimdTier ResolveSimdTier(const char* override_str, SimdTier detected) {
  if (override_str == nullptr || override_str[0] == '\0') return detected;
  SimdTier wanted;
  if (std::strcmp(override_str, "scalar") == 0) {
    wanted = SimdTier::kScalar;
  } else if (std::strcmp(override_str, "sse2") == 0) {
    wanted = SimdTier::kSse2;
  } else if (std::strcmp(override_str, "avx2") == 0) {
    wanted = SimdTier::kAvx2;
  } else {
    return detected;  // unknown spelling: ignore, never crash a run
  }
  return wanted < detected ? wanted : detected;  // clamp to capability
}

SimdTier ActiveSimdTier() {
  static const SimdTier tier =
      ResolveSimdTier(std::getenv("SITFACT_SIMD"), DetectSimdTier());
  return tier;
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "scalar";
}

}  // namespace sitfact
