#ifndef SITFACT_COMMON_HASH_H_
#define SITFACT_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace sitfact {

/// 64-bit mix (SplitMix64 finalizer); good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Order-dependent combine of a running hash with one more value.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 6) +
                       (seed >> 2)));
}

}  // namespace sitfact

#endif  // SITFACT_COMMON_HASH_H_
