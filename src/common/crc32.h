#ifndef SITFACT_COMMON_CRC32_H_
#define SITFACT_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sitfact {

/// Incremental CRC-32 (IEEE 802.3 polynomial, the zlib/gzip variant).
/// Snapshot files carry a trailing checksum so torn writes and bit rot are
/// reported as Corruption instead of being decoded into garbage state.
class Crc32 {
 public:
  /// Extends `crc` (0 for a fresh stream) over `data[0, len)`.
  static uint32_t Extend(uint32_t crc, const void* data, size_t len);

  /// One-shot convenience.
  static uint32_t Of(const void* data, size_t len) {
    return Extend(0, data, len);
  }

  void Update(const void* data, size_t len) {
    value_ = Extend(value_, data, len);
  }
  uint32_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint32_t value_ = 0;
};

}  // namespace sitfact

#endif  // SITFACT_COMMON_CRC32_H_
