#ifndef SITFACT_COMMON_RNG_H_
#define SITFACT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/hash.h"

namespace sitfact {

/// Deterministic, seedable PRNG (xoshiro256**). Used by the dataset
/// generators so every experiment is exactly reproducible from a seed;
/// deliberately not std::mt19937 so streams are stable across standard
/// library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed, per the xoshiro authors' guidance.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      s = Mix64(x);
    }
  }

  uint64_t NextU64() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire-style rejection-free-enough multiply-shift; bias is negligible
    // for the bounds used by the generators (< 2^32).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(NextU64()) * bound) >> 64);
  }

  /// Uniform int in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Zipf-like skewed index in [0, n): rank r chosen with weight 1/(r+1)^s
  /// using inverse-CDF on a power-law approximation. Used to model the
  /// "star player" skew of sports statistics.
  uint64_t NextZipf(uint64_t n, double s) {
    // Inverse transform of the continuous approximation of the Zipf CDF.
    double u = NextDouble();
    if (s == 1.0) s = 1.0000001;
    double exp = 1.0 - s;
    double h_n = (std::pow(static_cast<double>(n), exp) - 1.0) / exp;
    double x = std::pow(u * h_n * exp + 1.0, 1.0 / exp) - 1.0;
    auto idx = static_cast<uint64_t>(x);
    return idx >= n ? n - 1 : idx;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace sitfact

#endif  // SITFACT_COMMON_RNG_H_
