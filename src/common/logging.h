#ifndef SITFACT_COMMON_LOGGING_H_
#define SITFACT_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Minimal assertion macros in the spirit of glog's CHECK. A failed CHECK
// indicates a programming error inside the library, never a data error; data
// errors are reported through Status.

#define SITFACT_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define SITFACT_CHECK_MSG(cond, msg)                                      \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifndef NDEBUG
#define SITFACT_DCHECK(cond) SITFACT_CHECK(cond)
#else
#define SITFACT_DCHECK(cond) \
  do {                       \
  } while (0)
#endif

#endif  // SITFACT_COMMON_LOGGING_H_
