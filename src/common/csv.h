#ifndef SITFACT_COMMON_CSV_H_
#define SITFACT_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace sitfact {

/// RFC-4180-style CSV field helpers shared by Dataset CSV IO, CsvTable and
/// the CLI. Fields containing commas, quotes or newlines are double-quoted;
/// embedded quotes are doubled.

/// True when `s` must be quoted to survive a round trip.
bool CsvNeedsQuoting(const std::string& s);

/// Quotes `s` if needed, else returns it unchanged.
std::string CsvQuote(const std::string& s);

/// Splits one line into fields, honoring quoting. Fails with Corruption on
/// an unterminated quote. `out` is cleared first.
Status SplitCsvLine(const std::string& line, std::vector<std::string>* out);

}  // namespace sitfact

#endif  // SITFACT_COMMON_CSV_H_
