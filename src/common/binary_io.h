#ifndef SITFACT_COMMON_BINARY_IO_H_
#define SITFACT_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/status.h"

namespace sitfact {

/// Little-endian binary stream writer with a running CRC-32 over every byte
/// written (the caller decides when to emit the checksum itself, which is
/// excluded from the running value). IO errors latch into status(); writes
/// after an error are no-ops so call sites can write a whole record and
/// check once.
class BinaryWriter {
 public:
  /// Opens `path` for binary write (truncating).
  explicit BinaryWriter(const std::string& path);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  void WriteU8(uint8_t v) { WriteRaw(&v, 1); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteF64(double v);
  /// Length-prefixed (u32) string.
  void WriteString(const std::string& s);
  /// Raw bytes, no length prefix.
  void WriteRaw(const void* data, size_t len);

  /// Appends the running CRC (little-endian u32) without folding it into the
  /// CRC itself, then keeps accumulating for any further writes.
  void WriteChecksum();

  /// Flushes and closes; returns the first error if any occurred.
  Status Close();

  const Status& status() const { return status_; }
  uint32_t crc() const { return crc_.value(); }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  Crc32 crc_;
  Status status_;
};

/// Little-endian binary stream reader mirroring BinaryWriter. Short reads
/// and IO errors latch Corruption/IoError into status(); reads after an
/// error return zero values, so records can be decoded optimistically and
/// validated once at the end.
class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  uint8_t ReadU8();
  uint32_t ReadU32();
  uint64_t ReadU64();
  double ReadF64();
  std::string ReadString();
  void ReadRaw(void* data, size_t len);

  /// Reads a u32 checksum and compares against the CRC accumulated so far
  /// (the checksum bytes themselves are excluded). Mismatch latches
  /// Corruption.
  void VerifyChecksum();

  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  /// Guards length-prefixed allocations: latches Corruption and returns
  /// false when a decoded count exceeds `limit` (defends against garbage
  /// prefixes allocating gigabytes).
  bool CheckCount(uint64_t count, uint64_t limit, const char* what);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  Crc32 crc_;
  Status status_;
};

}  // namespace sitfact

#endif  // SITFACT_COMMON_BINARY_IO_H_
