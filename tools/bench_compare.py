#!/usr/bin/env python3
"""Gate bench results against checked-in baselines.

Every bench binary emits BENCH_<name>.json (see bench/harness.h). CI runs
the suite in smoke mode, uploads the JSON as artifacts, and calls this
script to compare the run against bench/baselines/.

What is gated: the `comparisons` counter — dominance comparisons are a
deterministic function of the algorithm and the (seeded) dataset, so they
are stable across machines, unlike wall time. A record regresses when its
comparisons grow more than --threshold over baseline. Records with zero
comparisons (bespoke drivers, whole-process "total" entries) and benches
whose counters are timing-dependent (the parallel-scaling bench: pruning
across shards varies with thread interleaving) are reported but not gated.
Wall-time deltas are printed for the humans reading the CI log.

Exit status: 0 when every gated record is within threshold, 1 otherwise.

Regenerate baselines with tools/update_bench_baselines.sh after an
intentional algorithmic change.
"""

import argparse
import json
import pathlib
import sys

# comparisons in these benches depend on thread timing, not just input
UNGATED_BENCHES = {"fig16_parallel_scaling"}

# Benches where the C-CSC / TopDown comparison *ratio* is additionally
# gated per (n, d, m). C-CSC's counters were deliberately relaxed when it
# moved onto the subspace-index layer (index-pruned candidate sets), so its
# absolute count gate alone would let it slide back toward the old
# outlier profile as long as each drift stayed under threshold; the ratio
# against the bit-identical TopDown engine pins the relative cost profile.
RATIO_GATED_BENCHES = {"fig07_time_baselines": ("C-CSC", "TopDown")}


def record_key(record):
    return (record["name"], record["n"], record["d"], record["m"])


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        # The motivating trajectory bug was a file regressing to a bare
        # `[]`; surface it as a clean diagnostic, not an AttributeError.
        raise ValueError(f"{path}: top-level value is not an object")
    records = {}
    for record in doc.get("records", []):
        # Repeated keys (e.g. the same algorithm replayed per panel) are
        # folded by summing: panel order is deterministic, so the sum is too.
        key = record_key(record)
        if key in records:
            records[key]["comparisons"] += record["comparisons"]
            records[key]["wall_ms"] += record["wall_ms"]
        else:
            records[key] = dict(record)
    return doc.get("bench", path.stem), records


def ratio_by_config(records, name):
    """comparisons per (n, d, m) for the named engine."""
    return {key[1:]: rec["comparisons"] for key, rec in records.items()
            if key[0] == name}


def check_ratio_gate(bench, baseline, results, threshold, failures):
    """Gates the numerator/denominator comparison ratio per (n, d, m).

    A zero comparison count anywhere in a ratio — a smoke-scale config
    whose stream is too short to bill a single dominance pair — makes the
    ratio meaningless, so such configs are skipped with a warning instead
    of crashing the gate with a ZeroDivisionError (the absolute gate above
    already skips zero-comparison baselines the same way)."""
    numerator, denominator = RATIO_GATED_BENCHES[bench]
    base_num = ratio_by_config(baseline, numerator)
    base_den = ratio_by_config(baseline, denominator)
    got_num = ratio_by_config(results, numerator)
    got_den = ratio_by_config(results, denominator)
    for config in sorted(base_num):
        label = "{}/{}  n={} d={} m={}".format(numerator, denominator,
                                               *config)
        if config not in base_den:
            continue  # no denominator row at this config; absolute gate only
        if config not in got_num or config not in got_den:
            # The missing absolute record is already reported above.
            print(f"  MISSING  {label}")
            continue
        zeros = [what for what, count in [
            ("baseline " + numerator, base_num[config]),
            ("baseline " + denominator, base_den[config]),
            ("result " + denominator, got_den[config]),
        ] if count == 0]
        if zeros:
            print(f"  skip     {label}  zero comparisons in "
                  f"{', '.join(zeros)}; ratio not gated", file=sys.stderr)
            continue
        base_ratio = base_num[config] / base_den[config]
        got_ratio = got_num[config] / got_den[config]
        delta = (got_ratio - base_ratio) / base_ratio
        verdict = "ok"
        if delta > threshold:
            verdict = "REGRESSED"
            failures.append(
                f"{bench}: {label}: comparison ratio {base_ratio:.2f} -> "
                f"{got_ratio:.2f} ({delta:+.1%}, threshold {threshold:.0%})")
        elif delta < -threshold:
            verdict = "improved?"
        print(f"  {verdict:9s}{label}  ratio {base_ratio:.2f} -> "
              f"{got_ratio:.2f} ({delta:+.1%})")


def validate(directory):
    """--validate mode: every BENCH_*.json in `directory` must parse and
    carry at least one record. Guards the committed perf trajectory against
    silently going empty (the bug this flag was added for: benches wrote
    their JSON where no collector ever looked, so the repo-root trajectory
    stayed `[]`)."""
    files = sorted(directory.glob("BENCH_*.json"))
    if not files:
        print(f"error: no BENCH_*.json under {directory}", file=sys.stderr)
        return 1
    bad = 0
    for path in files:
        try:
            _, records = load_records(path)
        except (OSError, ValueError, KeyError) as e:
            print(f"error: {path}: unreadable ({e})", file=sys.stderr)
            bad += 1
            continue
        if not records:
            print(f"error: {path}: empty record list", file=sys.stderr)
            bad += 1
        else:
            print(f"ok: {path.name}: {len(records)} record(s)")
    return 1 if bad else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path,
                        help="directory of baseline BENCH_*.json files")
    parser.add_argument("--results", type=pathlib.Path,
                        help="directory of freshly produced BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed fractional growth in a gated metric")
    parser.add_argument("--require-all", action="store_true",
                        help="fail when a baseline file has no result file")
    parser.add_argument("--validate", type=pathlib.Path, metavar="DIR",
                        help="only check that DIR's BENCH_*.json parse and "
                             "are non-empty; no baseline comparison")
    args = parser.parse_args()

    if args.validate is not None:
        return validate(args.validate)
    if args.baseline is None or args.results is None:
        parser.error("--baseline and --results are required "
                     "(or use --validate DIR)")

    baseline_files = sorted(args.baseline.glob("BENCH_*.json"))
    if not baseline_files:
        print(f"error: no baselines under {args.baseline}", file=sys.stderr)
        return 1

    failures = []
    missing = []
    gated = 0
    for baseline_file in baseline_files:
        result_file = args.results / baseline_file.name
        if not result_file.exists():
            missing.append(baseline_file.name)
            continue
        try:
            bench, baseline = load_records(baseline_file)
            _, results = load_records(result_file)
        except (OSError, ValueError, KeyError) as e:
            failures.append(f"{baseline_file.name}: unreadable ({e})")
            print(f"== {baseline_file.name}  UNREADABLE: {e}")
            continue
        gate_this = bench not in UNGATED_BENCHES
        print(f"== {bench}" + ("" if gate_this else " (not gated)"))
        for key, base in sorted(baseline.items()):
            got = results.get(key)
            label = "{}  n={} d={} m={}".format(*key)
            if got is None:
                failures.append(f"{bench}: record missing from results: "
                                f"{label}")
                print(f"  MISSING  {label}")
                continue
            wall_note = ""
            if base["wall_ms"] > 0:
                wall_delta = (got["wall_ms"] - base["wall_ms"]) / base["wall_ms"]
                wall_note = f"  wall {wall_delta:+.0%} (not gated)"
            if not gate_this or base["comparisons"] == 0:
                print(f"  skip     {label}{wall_note}")
                continue
            gated += 1
            delta = ((got["comparisons"] - base["comparisons"])
                     / base["comparisons"])
            verdict = "ok"
            if delta > args.threshold:
                verdict = "REGRESSED"
                failures.append(
                    f"{bench}: {label}: comparisons {base['comparisons']} -> "
                    f"{got['comparisons']} ({delta:+.1%}, threshold "
                    f"{args.threshold:.0%})")
            elif delta < -args.threshold:
                verdict = "improved?"  # suspicious enough to flag, not fail
            print(f"  {verdict:9s}{label}  comparisons {delta:+.1%}"
                  f"{wall_note}")
        if gate_this and bench in RATIO_GATED_BENCHES:
            check_ratio_gate(bench, baseline, results, args.threshold,
                             failures)

    if missing:
        note = "error" if args.require_all else "warning"
        for name in missing:
            print(f"{note}: no result file for baseline {name}",
                  file=sys.stderr)
        if args.require_all:
            failures.extend(missing)

    print(f"\n{gated} gated record(s), {len(failures)} failure(s)")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
