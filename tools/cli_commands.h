#ifndef SITFACT_TOOLS_CLI_COMMANDS_H_
#define SITFACT_TOOLS_CLI_COMMANDS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace sitfact {
namespace cli {

/// Parsed command line: subcommand + `--flag value` pairs. Flags are
/// single-valued; repeated flags keep the last value.
struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  bool Has(const std::string& name) const { return flags.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  int GetInt(const std::string& name, int fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
};

/// Parses argv[1..]. On malformed input returns InvalidArgument describing
/// the problem; the parser itself never prints — callers decide how to
/// render the error (cli_main.cc routes it through PrintUsage).
Status ParseArgs(int argc, char** argv, Args* out);

/// `sitfact_cli generate`: writes a synthetic dataset as CSV.
int RunGenerate(const Args& args);

/// `sitfact_cli discover`: streams a CSV through a discovery algorithm and
/// prints prominent facts as they emerge.
int RunDiscover(const Args& args);

/// `sitfact_cli query`: one-shot contextual skyline query over a CSV.
int RunQuery(const Args& args);

/// `sitfact_cli facts`: serve discovered facts through FactService — top-k
/// by prominence with filters and cursor pagination, a --watch mode that
/// queries live while FactFeed ingests, and a --dir mode that recovers a
/// durable store and serves immediately.
int RunFacts(const Args& args);

/// `sitfact_cli serve`: ingest a CSV, then answer HTTP queries over the
/// unified query API (epoll front end, src/net/) until stopped.
int RunServe(const Args& args);

/// `sitfact_cli resume`: restores an engine snapshot and optionally
/// continues streaming another CSV into it.
int RunResume(const Args& args);

/// `sitfact_cli checkpoint`: streams a CSV into a durable store (WAL +
/// snapshots under --dir), checkpointing per --every and at the end unless
/// --no-final. Without --csv it forces a checkpoint of an existing store's
/// WAL tail.
int RunCheckpoint(const Args& args);

/// `sitfact_cli restore`: recovers a durable store (newest valid snapshot +
/// WAL replay) and optionally continues streaming another CSV into it.
int RunRestore(const Args& args);

/// `sitfact_cli wal-dump`: prints the records of one WAL file (--wal) or of
/// every WAL segment in a durable store (--dir), including torn-tail notes.
int RunWalDump(const Args& args);

/// Prints per-command usage; returns exit code 2 for consistency.
int PrintUsage(const std::string& error);

}  // namespace cli
}  // namespace sitfact

#endif  // SITFACT_TOOLS_CLI_COMMANDS_H_
