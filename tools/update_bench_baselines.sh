#!/usr/bin/env bash
# Regenerates bench/baselines/*.json — the reference points for CI's bench
# regression gate (tools/bench_compare.py). Run after an intentional change
# to an algorithm's work profile, from the repo root, with a Release build
# in ./build:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   tools/update_bench_baselines.sh
#
# SITFACT_BENCH_SCALE must match what .github/workflows/ci.yml exports for
# the bench job: the gated metric (dominance comparisons) is deterministic
# per (algorithm, dataset, n), and n scales with this knob.
set -euo pipefail

SCALE="${SITFACT_BENCH_SCALE:-0.25}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$ROOT/bench/baselines"
BUILD="${1:-$ROOT/build}"

mkdir -p "$OUT"
for bench in "$BUILD"/bench/bench_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== $name (scale $SCALE)"
  if [ "$name" = "bench_micro_components" ]; then
    # Google Benchmark binary: keep the smoke run short. The min_time flag
    # syntax changed across benchmark versions ("0.05s" vs "0.05"); try
    # both.
    SITFACT_BENCH_SCALE="$SCALE" "$bench" --out "$OUT" \
      --benchmark_min_time=0.05s > /dev/null 2>&1 ||
      SITFACT_BENCH_SCALE="$SCALE" "$bench" --out "$OUT" \
        --benchmark_min_time=0.05 > /dev/null
  else
    SITFACT_BENCH_SCALE="$SCALE" "$bench" --out "$OUT" > /dev/null
  fi
done
echo "baselines written to $OUT"
