#include "cli_commands.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/narrator.h"
#include "exec/sharded_engine.h"
#include "datagen/nba_generator.h"
#include "datagen/stock_generator.h"
#include "datagen/weather_generator.h"
#include "io/csv_table.h"
#include "io/snapshot.h"
#include "persist/durable_engine.h"
#include "persist/wal.h"
#include "net/fact_server.h"
#include "net/json.h"
#include "query/fact_index.h"
#include "query/skyline_query.h"
#include "relation/dataset.h"
#include "service/fact_feed.h"
#include "service/fact_service.h"
#include "service/filter_parse.h"
#include "service/query_api.h"
#include "storage/storage_options.h"

namespace sitfact {
namespace cli {

namespace {

/// Parses a measure list "points:+,fouls:-,assists" (default direction +).
StatusOr<std::vector<MeasureAttribute>> ParseMeasureSpecs(
    const std::string& spec) {
  std::vector<MeasureAttribute> out;
  for (const std::string& token : SplitList(spec)) {
    MeasureAttribute m;
    size_t colon = token.rfind(':');
    if (colon == std::string::npos) {
      m.name = token;
      m.direction = Direction::kLargerIsBetter;
    } else {
      m.name = token.substr(0, colon);
      std::string dir = token.substr(colon + 1);
      if (dir == "+") {
        m.direction = Direction::kLargerIsBetter;
      } else if (dir == "-") {
        m.direction = Direction::kSmallerIsBetter;
      } else {
        return Status::InvalidArgument("bad measure direction '" + dir +
                                       "' (use + or -)");
      }
    }
    if (m.name.empty()) {
      return Status::InvalidArgument("empty measure name in --measures");
    }
    out.push_back(std::move(m));
  }
  if (out.empty()) {
    return Status::InvalidArgument("--measures must name at least one column");
  }
  return out;
}

/// Builds the schema named by --dims / --measures.
StatusOr<Schema> SchemaFromFlags(const Args& args) {
  std::vector<DimensionAttribute> dims;
  for (const std::string& name : SplitList(args.Get("dims"))) {
    dims.push_back({name});
  }
  if (dims.empty()) {
    return Status::InvalidArgument("--dims must name at least one column");
  }
  auto meas_or = ParseMeasureSpecs(args.Get("measures"));
  if (!meas_or.ok()) return meas_or.status();
  return Schema::Create(std::move(dims), std::move(meas_or).value());
}

/// Loads --csv into a Dataset shaped by --dims/--measures.
StatusOr<Dataset> LoadCsvFlag(const Args& args) {
  const std::string path = args.Get("csv");
  if (path.empty()) return Status::InvalidArgument("--csv is required");
  auto schema_or = SchemaFromFlags(args);
  if (!schema_or.ok()) return schema_or.status();
  auto table_or = CsvTable::Read(path);
  if (!table_or.ok()) return table_or.status();
  return DatasetFromCsvTable(table_or.value(), schema_or.value());
}

std::string TempStoreDir(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("sitfact_cli_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

}  // namespace

int Args::GetInt(const std::string& name, int fallback) const {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : std::atoi(it->second.c_str());
}

double Args::GetDouble(const std::string& name, double fallback) const {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : std::atof(it->second.c_str());
}

Status ParseArgs(int argc, char** argv, Args* out) {
  if (argc < 2) {
    return Status::InvalidArgument("missing command");
  }
  out->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    std::string name = arg.substr(2);
    std::string value = "true";  // bare flags act as booleans
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    out->flags[name] = value;
  }
  return Status::Ok();
}

int PrintUsage(const std::string& error) {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(stderr, R"(sitfact_cli — incremental situational-fact discovery

USAGE
  sitfact_cli generate --dataset nba|weather|stock --rows N --out FILE
                       [--seed S]
  sitfact_cli discover --csv FILE --dims d1,d2,... --measures m1:+,m2:-,...
                       [--algorithm STopDown] [--dhat K] [--mhat K]
                       [--tau T] [--top K] [--entity DIM]
                       [--threads N] [--shards K]
                       [--storage auto|memory|paged] [--cache-mb N]
                       [--spill-dir DIR]
                       [--save-snapshot FILE] [--quiet]
  sitfact_cli query    --csv FILE --dims ... --measures ...
                       [--where d1=v1,d2=v2] [--subspace m1,m2]
                       [--algo auto|bnl|sfs|dnc]
  sitfact_cli facts    (--csv FILE --dims ... --measures ... | --dir DIR)
                       [--k N] [--page N] [--where d1=v1,...]
                       [--subspace m1,m2] [--min-prominence P]
                       [--window FIRST:LAST] [--prominent-only]
                       [--entity DIM] [--tau T] [--format text|json]
                       [--algorithm A | --threads N [--shards K]]
                       [--watch [--poll-ms MS]] [--replay]
  sitfact_cli serve    --csv FILE --dims ... --measures ...
                       [--port P] [--host H] [--port-file FILE]
                       [--max-connections N] [--cache N]
                       [--algorithm A] [--tau T] [--entity DIM]
  sitfact_cli resume   --snapshot FILE [--csv FILE] [--top K] [--quiet]
                       [--algorithm NAME] [--replay]
  sitfact_cli checkpoint --dir DIR [--csv FILE --dims ... --measures ...]
                       [--algorithm A | --threads N [--shards K]]
                       [--tau T] [--every N] [--sync] [--no-final]
                       [--full-every N] [--no-delta]
                       [--top K] [--quiet]
  sitfact_cli restore  --dir DIR [--csv FILE] [--threads N [--shards K]]
                       [--every N] [--no-final] [--top K] [--quiet]
                       [--replay]
  sitfact_cli wal-dump (--wal FILE | --dir DIR) [--limit N]

NOTES
  Measures take an optional direction suffix: "points:+" (larger is better,
  the default) or "fouls:-" (smaller is better).
  discover prints, per arrival, the most prominent constraint-measure pairs
  that admit the new row into a contextual skyline (tau filters weak facts).
  --threads/--shards route discover through the sharded parallel engine
  (identical output, see docs/parallelism.md); --shards defaults to
  2*threads. The sharded engine has its own algorithm, so --algorithm does
  not combine with it.
  facts serves discovered facts through the snapshot-isolated FactService
  (docs/query_api.md): top-k by at-arrival prominence with filters and
  cursor pagination (--page). --watch queries the live index while the
  stream ingests; --dir recovers a durable store and serves immediately
  (no CSV — the facts come from the recovered history).
  serve ingests the CSV, then answers HTTP queries (docs/serving.md): the
  same top-k/filter/pagination surface as facts, over a single-threaded
  epoll loop with keep-alive, a per-epoch response cache, and bounded
  admission (--max-connections; overload answers 429 + Retry-After).
  --port 0 picks a free port; --port-file publishes the choice to scripts.
  facts --format json prints the same serialized QueryResponse the server
  sends, byte for byte — the two surfaces share one query API and one
  serializer (docs/query_api.md).
  checkpoint/restore manage a durable store (docs/persistence.md): every
  ingested row is WAL-logged before discovery, --every N snapshots the
  engine every N ops, and restore recovers from the newest valid snapshot
  plus the WAL tail — --no-final on checkpoint leaves the tail for restore
  to replay, which is how a crash looks on disk. Checkpoints between full
  snapshots are bucket-granular deltas (every --full-every N'th is full;
  --no-delta forces full snapshots only).
  --storage picks the µ-store backend for any engine-building command:
  "paged" spills bucket runs to disk behind a page cache capped at
  --cache-mb (files under --spill-dir), trading bounded memory for I/O;
  "auto" (the default) resolves SITFACT_STORAGE / SITFACT_STORAGE_CACHE_MB.
)");
  return 2;
}

int RunGenerate(const Args& args) {
  const std::string kind = args.Get("dataset", "nba");
  const int rows = args.GetInt("rows", 1000);
  const std::string out = args.Get("out");
  if (out.empty()) return PrintUsage("--out is required");
  if (rows <= 0) return PrintUsage("--rows must be positive");
  const auto seed = static_cast<uint64_t>(args.GetInt("seed", 0));

  Dataset data{Schema()};
  if (kind == "nba") {
    NbaGenerator::Config cfg;
    if (seed != 0) cfg.seed = seed;
    cfg.tuples_per_season = rows > 8 ? rows / 8 : 1;
    data = NbaGenerator(cfg).Generate(rows);
  } else if (kind == "weather") {
    WeatherGenerator::Config cfg;
    if (seed != 0) cfg.seed = seed;
    cfg.num_locations = 256;
    cfg.records_per_day = rows > 24 ? rows / 24 : 1;
    data = WeatherGenerator(cfg).Generate(rows);
  } else if (kind == "stock") {
    StockGenerator::Config cfg;
    if (seed != 0) cfg.seed = seed;
    data = StockGenerator(cfg).Generate(rows);
  } else {
    return PrintUsage("unknown --dataset (use nba, weather or stock)");
  }

  Status st = data.WriteCsv(out);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %d %s rows to %s\n", rows, kind.c_str(), out.c_str());
  return 0;
}

namespace {

/// Shared per-arrival narration + end-of-stream summary for both discover
/// paths — the sharded engine's whole contract is output identical to the
/// sequential engine's, so there must be exactly one printer.
class DiscoverPrinter {
 public:
  DiscoverPrinter(const FactNarrator* narrator, int top, bool quiet)
      : narrator_(narrator), top_(top), quiet_(quiet) {}

  void OnReport(const ArrivalReport& report) {
    total_facts_ += report.facts.size();
    if (report.prominent.empty()) return;
    ++arrivals_with_prominent_;
    if (quiet_) return;
    std::printf("tuple %llu:\n",
                static_cast<unsigned long long>(report.tuple));
    int shown = 0;
    for (const RankedFact& rf : report.prominent) {
      if (shown++ >= top_) break;
      std::printf("  %s\n", narrator_->Narrate(report.tuple, rf).c_str());
    }
  }

  /// `engine_label` goes after "algorithm=" in the summary line.
  void PrintSummary(size_t rows, double tau,
                    const std::string& engine_label) const {
    std::printf(
        "processed %zu rows: %llu facts total, %llu arrivals with prominent "
        "facts (tau=%.1f, algorithm=%s)\n",
        rows, static_cast<unsigned long long>(total_facts_),
        static_cast<unsigned long long>(arrivals_with_prominent_), tau,
        engine_label.c_str());
  }

 private:
  const FactNarrator* narrator_;
  int top_;
  bool quiet_;
  uint64_t total_facts_ = 0;
  uint64_t arrivals_with_prominent_ = 0;
};

/// --storage / --cache-mb / --spill-dir: µ-store backend selection, shared
/// by every engine-building command. "paged" spills bucket runs to disk
/// behind a bounded page cache (docs/architecture.md); unset flags leave
/// the kAuto default, which the factory resolves against SITFACT_STORAGE.
Status ApplyStorageFlags(const Args& args, StorageConfig* storage) {
  if (args.Has("storage")) {
    auto backend_or = ParseStorageBackend(args.Get("storage"));
    if (!backend_or.ok()) return backend_or.status();
    storage->backend = backend_or.value();
  }
  if (args.Has("cache-mb")) {
    const int mb = args.GetInt("cache-mb", 0);
    if (mb <= 0) {
      return Status::InvalidArgument("--cache-mb must be a positive integer");
    }
    storage->cache_bytes = static_cast<size_t>(mb) << 20;
  }
  if (args.Has("spill-dir")) storage->spill_dir = args.Get("spill-dir");
  return Status::Ok();
}

/// Builds the narrator shared by both discover paths; returns false (after
/// printing usage) when --entity names no dimension.
bool MakeNarrator(const Args& args, const Dataset& data, Relation* relation,
                  std::unique_ptr<FactNarrator>* narrator) {
  int entity_dim = -1;
  if (args.Has("entity")) {
    entity_dim = data.schema().DimensionIndex(args.Get("entity"));
    if (entity_dim < 0) return false;
  }
  *narrator = std::make_unique<FactNarrator>(relation, entity_dim);
  return true;
}

/// `discover --threads N`: the sharded parallel engine. Same per-arrival
/// output as the sequential path (the engines are differentially tested for
/// equality); rows are fed in batches so discovery of arrival i+1 overlaps
/// the merge of arrival i.
int RunDiscoverSharded(const Args& args, const Dataset& data,
                       const DiscoveryOptions& options) {
  if (args.Has("algorithm")) {
    return PrintUsage(
        "--algorithm does not combine with --threads/--shards (the sharded "
        "engine is its own algorithm)");
  }
  const int threads = args.GetInt("threads", 1);
  if (threads < 1) return PrintUsage("--threads must be >= 1");
  const int shards = args.GetInt("shards", threads > 1 ? 2 * threads : 4);
  if (shards < 1 || shards > ShardedDiscoverer::kMaxShards) {
    return PrintUsage("--shards must be in [1, " +
                      std::to_string(ShardedDiscoverer::kMaxShards) + "]");
  }

  Relation relation(data.schema());
  ShardedEngine::Config config;
  config.num_shards = shards;
  config.num_threads = threads;
  config.options = options;
  config.tau = args.GetDouble("tau", 2.0);
  ShardedEngine engine(&relation, config);

  std::unique_ptr<FactNarrator> narrator;
  if (!MakeNarrator(args, data, &relation, &narrator)) {
    return PrintUsage("--entity names no dimension");
  }
  DiscoverPrinter printer(narrator.get(), args.GetInt("top", 3),
                          args.Has("quiet"));

  constexpr size_t kBatch = 256;
  const std::vector<Row>& rows = data.rows();
  for (size_t begin = 0; begin < rows.size(); begin += kBatch) {
    size_t count = std::min(kBatch, rows.size() - begin);
    for (const ArrivalReport& report : engine.AppendBatch(
             std::span<const Row>(rows.data() + begin, count))) {
      printer.OnReport(report);
    }
  }
  printer.PrintSummary(
      rows.size(), config.tau,
      "Sharded, shards=" +
          std::to_string(engine.discoverer().num_shards()) +
          ", threads=" + std::to_string(engine.discoverer().num_threads()));

  if (args.Has("save-snapshot")) {
    Status st = SaveEngineSnapshot(engine, args.Get("save-snapshot"));
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("snapshot saved to %s\n", args.Get("save-snapshot").c_str());
  }
  return 0;
}

}  // namespace

int RunDiscover(const Args& args) {
  auto data_or = LoadCsvFlag(args);
  if (!data_or.ok()) return PrintUsage(data_or.status().ToString());
  const Dataset& data = data_or.value();

  DiscoveryOptions options;
  options.max_bound_dims = args.GetInt("dhat", -1);
  options.max_measure_dims = args.GetInt("mhat", -1);
  if (Status st = ApplyStorageFlags(args, &options.storage); !st.ok()) {
    return PrintUsage(st.message());
  }

  // Any explicit --threads/--shards goes to the sharded path, which owns
  // their validation (so `--threads 0` errors instead of silently running
  // the sequential engine).
  if (args.Has("threads") || args.Has("shards")) {
    return RunDiscoverSharded(args, data, options);
  }

  const std::string algorithm = args.Get("algorithm", "STopDown");

  Relation relation(data.schema());
  std::string store_dir;
  if (algorithm.rfind("FS", 0) == 0) store_dir = TempStoreDir("discover");
  auto disc_or = DiscoveryEngine::CreateDiscoverer(algorithm, &relation,
                                                   options, store_dir);
  if (!disc_or.ok()) return PrintUsage(disc_or.status().ToString());

  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = args.GetDouble("tau", 2.0);
  config.rank_facts = disc_or.value()->store() != nullptr;
  DiscoveryEngine engine(&relation, std::move(disc_or).value(), config);

  std::unique_ptr<FactNarrator> narrator;
  if (!MakeNarrator(args, data, &relation, &narrator)) {
    return PrintUsage("--entity names no dimension");
  }
  DiscoverPrinter printer(narrator.get(), args.GetInt("top", 3),
                          args.Has("quiet"));
  for (const Row& row : data.rows()) {
    printer.OnReport(engine.Append(row));
  }
  printer.PrintSummary(data.rows().size(), config.tau, algorithm);
  if (!config.rank_facts) {
    std::printf(
        "note: %s keeps no µ-store, so prominence ranking is unavailable; "
        "facts were discovered but not ranked\n",
        algorithm.c_str());
  }

  if (args.Has("save-snapshot")) {
    Status st = SaveEngineSnapshot(engine, args.Get("save-snapshot"));
    if (!st.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("snapshot saved to %s\n", args.Get("save-snapshot").c_str());
  }
  return 0;
}

int RunQuery(const Args& args) {
  auto data_or = LoadCsvFlag(args);
  if (!data_or.ok()) return PrintUsage(data_or.status().ToString());
  const Dataset& data = data_or.value();
  const Schema& schema = data.schema();

  Relation relation(schema);
  for (const Row& row : data.rows()) relation.Append(row);

  // --where d=v,...: build the constraint (grammar shared with the server,
  // src/service/filter_parse.h).
  std::string empty_note;
  auto constraint_or =
      ParseWhereConstraint(args.Get("where"), relation, &empty_note);
  if (!constraint_or.ok()) {
    return PrintUsage(constraint_or.status().message());
  }
  if (!empty_note.empty()) {
    std::printf("empty context: %s\n", empty_note.c_str());
    return 0;
  }
  Constraint constraint = constraint_or.value();

  // --subspace m1,m2 (default: all measures).
  MeasureMask subspace = schema.FullMeasureMask();
  if (args.Has("subspace")) {
    auto subspace_or = ParseSubspaceList(args.Get("subspace"), schema);
    if (!subspace_or.ok()) return PrintUsage(subspace_or.status().message());
    subspace = subspace_or.value();
  }

  SkylineQueryEngine query(&relation);
  QueryAlgorithm algo = ParseQueryAlgorithm(args.Get("algo", "auto"));
  SkylineQueryResult result = query.Evaluate(constraint, subspace, algo);

  std::printf("context %s has %llu tuples, skyline %zu (%llu comparisons)\n",
              constraint.ToPredicateString(relation).c_str(),
              static_cast<unsigned long long>(result.stats.context_size),
              result.skyline.size(),
              static_cast<unsigned long long>(result.stats.comparisons));
  for (TupleId t : result.skyline) {
    std::string line = "  #" + std::to_string(t);
    for (int d = 0; d < schema.num_dimensions(); ++d) {
      line += " " + relation.DimString(t, d);
    }
    line += " |";
    for (int j = 0; j < schema.num_measures(); ++j) {
      if ((subspace >> j) & 1u) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " %s=%g",
                      schema.measure(j).name.c_str(), relation.measure(t, j));
        line += buf;
      }
    }
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int RunResume(const Args& args) {
  const std::string path = args.Get("snapshot");
  if (path.empty()) return PrintUsage("--snapshot is required");

  SnapshotLoadOptions load_options;
  load_options.file_store_dir = TempStoreDir("resume");
  load_options.algorithm_override = args.Get("algorithm");
  load_options.allow_replay_rebuild = args.Has("replay");
  if (Status st = ApplyStorageFlags(args, &load_options.storage); !st.ok()) {
    return PrintUsage(st.message());
  }
  auto restored_or = LoadEngineSnapshot(path, load_options);
  if (!restored_or.ok()) {
    std::fprintf(stderr, "%s\n", restored_or.status().ToString().c_str());
    return 1;
  }
  RestoredEngine restored = std::move(restored_or).value();
  std::printf("restored %s engine with %u tuples (%u live)\n",
              std::string(restored.engine->discoverer().name()).c_str(),
              restored.relation->size(), restored.relation->live_size());

  if (!args.Has("csv")) return 0;

  // Continue the stream: the CSV must carry the snapshot's schema columns.
  auto table_or = CsvTable::Read(args.Get("csv"));
  if (!table_or.ok()) return PrintUsage(table_or.status().ToString());
  auto data_or =
      DatasetFromCsvTable(table_or.value(), restored.relation->schema());
  if (!data_or.ok()) return PrintUsage(data_or.status().ToString());

  const int top = args.GetInt("top", 3);
  const bool quiet = args.Has("quiet");
  FactNarrator narrator(restored.relation.get(), -1);
  for (const Row& row : data_or.value().rows()) {
    ArrivalReport report = restored.engine->Append(row);
    if (quiet || report.prominent.empty()) continue;
    std::printf("tuple %llu:\n",
                static_cast<unsigned long long>(report.tuple));
    int shown = 0;
    for (const RankedFact& rf : report.prominent) {
      if (shown++ >= top) break;
      std::printf("  %s\n", narrator.Narrate(report.tuple, rf).c_str());
    }
  }
  std::printf("resumed stream complete; relation now has %u tuples\n",
              restored.relation->size());
  return 0;
}

namespace {

/// Durability knobs shared by checkpoint and restore.
StatusOr<persist::DurableOptions> DurableOptionsFromFlags(const Args& args) {
  persist::DurableOptions opts;
  opts.dir = args.Get("dir");
  opts.checkpoint_every = static_cast<uint64_t>(args.GetInt("every", 0));
  opts.sync_every_op = args.Has("sync");
  opts.algorithm = args.Get("algorithm", "STopDown");
  opts.discovery.max_bound_dims = args.GetInt("dhat", -1);
  opts.discovery.max_measure_dims = args.GetInt("mhat", -1);
  if (Status st = ApplyStorageFlags(args, &opts.discovery.storage);
      !st.ok()) {
    return st;
  }
  opts.tau = args.GetDouble("tau", 2.0);
  opts.allow_replay_rebuild = args.Has("replay");
  if (args.Has("full-every")) {
    opts.full_snapshot_every = args.GetInt("full-every", 8);
  }
  if (args.Has("no-delta")) opts.delta_checkpoints = false;
  if (args.Has("threads") || args.Has("shards")) {
    const int threads = args.GetInt("threads", 1);
    opts.num_threads = threads;
    opts.num_shards = args.GetInt("shards", threads > 1 ? 2 * threads : 4);
  }
  // file_store_dir is left empty: DurableEngine defaults it to
  // <dir>/fs_store so FS-algorithm stores are self-contained.
  return opts;
}

/// Streams --csv rows through the durable engine with the same per-arrival
/// narration as `discover` (checkpoint + restore must concatenate into the
/// uninterrupted run's output — tests/smoke/cli_smoke.sh diffs exactly
/// that). Returns an exit code.
int StreamIntoDurable(const Args& args, persist::DurableEngine* durable,
                      const Dataset& data) {
  std::unique_ptr<FactNarrator> narrator;
  if (!MakeNarrator(args, data, &durable->relation(), &narrator)) {
    return PrintUsage("--entity names no dimension");
  }
  DiscoverPrinter printer(narrator.get(), args.GetInt("top", 3),
                          args.Has("quiet"));
  for (const Row& row : data.rows()) {
    auto report_or = durable->Append(row);
    if (!report_or.ok()) {
      std::fprintf(stderr, "durable append failed: %s\n",
                   report_or.status().ToString().c_str());
      return 1;
    }
    printer.OnReport(report_or.value());
  }
  const double tau = durable->engine() != nullptr
                         ? durable->engine()->config().tau
                         : durable->sharded_engine()->config().tau;
  printer.PrintSummary(data.rows().size(), tau,
                       durable->algorithm() + " (durable)");
  return 0;
}

/// Parsed query flags for `facts`; --where needs the ingested relation's
/// dictionaries, so parsing happens after the stream is drained.
struct FactsQueryFlags {
  size_t k = 10;
  size_t page = 0;  // 0 = one page of k; otherwise cursor-paginate
  FactFilter filter;
  std::string empty_note;  // --where named a value that never occurs
};

StatusOr<FactsQueryFlags> ParseFactsFlags(const Args& args,
                                          const Relation& relation) {
  FactsQueryFlags out;
  const int k = args.GetInt("k", 10);
  if (k <= 0) return Status::InvalidArgument("--k must be positive");
  out.k = static_cast<size_t>(k);
  const int page = args.GetInt("page", 0);
  if (page < 0) return Status::InvalidArgument("--page must be >= 0");
  out.page = static_cast<size_t>(page);
  const std::string format = args.Get("format", "text");
  if (format != "text" && format != "json") {
    return Status::InvalidArgument("--format must be text or json");
  }
  // The filter grammar is shared verbatim with the HTTP server
  // (src/service/filter_parse.h) — one parser, one set of error messages.
  FactFilterSpec spec;
  spec.where = args.Get("where");
  spec.subspace = args.Get("subspace");
  spec.window = args.Get("window");
  spec.min_prominence = args.GetDouble("min-prominence", 0.0);
  spec.prominent_only = args.Has("prominent-only");
  auto filter_or = ParseFactFilter(spec, relation, &out.empty_note);
  if (!filter_or.ok()) return filter_or.status();
  out.filter = std::move(filter_or).value();
  return out;
}

/// `facts --format json`: the canonical serialized QueryResponse for the
/// equivalent TopK request — byte-identical to what the HTTP server
/// answers for the same query at the same epoch (tests/smoke diff this).
void PrintFactsJson(const FactService::Snapshot& snap,
                    const FactsQueryFlags& flags) {
  QueryResponse response;
  if (flags.empty_note.empty()) {
    QueryRequest request;
    request.kind = QueryKind::kTopK;
    request.k = flags.k;
    request.filter = flags.filter;
    auto response_or = ExecuteQuery(snap, request);
    if (!response_or.ok()) {
      std::printf("%s\n",
                  net::SerializeErrorBody(response_or.status()).c_str());
      return;
    }
    response = std::move(response_or).value();
  } else {
    // Provably empty context: an empty page at the current epoch, exactly
    // what the server answers.
    response.epoch = snap.epoch();
  }
  std::printf("%s\n", net::SerializeResponse(response).c_str());
}

/// Prints up to `flags.k` TopK facts, cursor-paginating when --page is set.
void PrintFactPages(const FactService::Snapshot& snap,
                    const FactsQueryFlags& flags) {
  std::printf("epoch %llu: %zu facts indexed over %llu arrivals\n",
              static_cast<unsigned long long>(snap.epoch()),
              snap.fact_count(),
              static_cast<unsigned long long>(snap.arrivals()));
  if (!flags.empty_note.empty()) {
    std::printf("no facts: %s\n", flags.empty_note.c_str());
    return;
  }
  const size_t page_size = flags.page == 0 ? flags.k : flags.page;
  size_t printed = 0;
  std::optional<TopKCursor> cursor;
  while (printed < flags.k) {
    FactService::Page page = snap.TopK(
        std::min(page_size, flags.k - printed), flags.filter, cursor);
    if (page.facts.empty()) break;
    if (flags.page != 0 && printed > 0) {
      std::printf("  -- next page (cursor: prominence %.2f, record %u) --\n",
                  cursor->prominence, cursor->record_id);
    }
    for (const FactService::FactView& view : page.facts) {
      std::printf("%3zu. %s\n", ++printed, snap.Explain(view).c_str());
    }
    if (!page.next.has_value()) break;
    cursor = page.next;
  }
  if (printed == 0) std::printf("no facts match the filter\n");
}

/// `facts --dir`: recover a durable store and serve immediately — the
/// "crashed newsroom process comes back and answers queries" path.
int RunFactsFromDurable(const Args& args) {
  auto opts_or = DurableOptionsFromFlags(args);
  if (!opts_or.ok()) return PrintUsage(opts_or.status().message());
  persist::DurableOptions opts = std::move(opts_or).value();
  auto durable_or = persist::DurableEngine::Open(opts, Schema());
  if (!durable_or.ok()) {
    std::fprintf(stderr, "%s\n", durable_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<persist::DurableEngine> durable =
      std::move(durable_or).value();

  // Flags are validated before the (stream-length) index rebuild so a typo
  // costs nothing.
  auto flags_or = ParseFactsFlags(args, durable->relation());
  if (!flags_or.ok()) return PrintUsage(flags_or.status().message());

  FactService::Options service_options;
  service_options.entity = args.Get("entity");
  if (!service_options.entity.empty() &&
      durable->relation().schema().DimensionIndex(service_options.entity) <
          0) {
    return PrintUsage("--entity names no dimension");
  }
  auto service_or = FactService::FromDurable(durable.get(), service_options);
  if (!service_or.ok()) {
    std::fprintf(stderr, "index rebuild failed: %s\n",
                 service_or.status().ToString().c_str());
    return 1;
  }
  if (args.Get("format", "text") == "json") {
    PrintFactsJson(service_or.value()->Acquire(), flags_or.value());
    return 0;
  }
  std::printf("recovered %s store at seq %llu; index rebuilt, serving\n",
              durable->algorithm().c_str(),
              static_cast<unsigned long long>(durable->next_seq()));
  PrintFactPages(service_or.value()->Acquire(), flags_or.value());
  return 0;
}

}  // namespace

int RunFacts(const Args& args) {
  if (args.Has("dir")) {
    if (args.Has("csv")) {
      return PrintUsage(
          "facts --dir serves an existing durable store; ingest with "
          "checkpoint/restore first");
    }
    return RunFactsFromDurable(args);
  }

  auto data_or = LoadCsvFlag(args);
  if (!data_or.ok()) return PrintUsage(data_or.status().ToString());
  const Dataset& data = data_or.value();

  DiscoveryOptions options;
  options.max_bound_dims = args.GetInt("dhat", -1);
  options.max_measure_dims = args.GetInt("mhat", -1);
  if (Status st = ApplyStorageFlags(args, &options.storage); !st.ok()) {
    return PrintUsage(st.message());
  }
  const double tau = args.GetDouble("tau", 2.0);

  Relation relation(data.schema());

  // Pre-ingest flag validation against the (still empty) relation: a typo
  // in --k/--page/--window/--subspace or a misspelled --where dimension
  // must not cost a full discovery run. Dictionary-dependent value lookups
  // re-run for real after the stream is drained.
  {
    auto probe_or = ParseFactsFlags(args, relation);
    if (!probe_or.ok()) return PrintUsage(probe_or.status().message());
  }
  FactService::Options service_options;
  service_options.entity = args.Get("entity");
  if (!service_options.entity.empty() &&
      data.schema().DimensionIndex(service_options.entity) < 0) {
    return PrintUsage("--entity names no dimension");
  }
  FactService service(&relation, service_options);

  // Engine: sequential by default, sharded with --threads/--shards (same
  // rules as discover).
  std::unique_ptr<DiscoveryEngine> engine;
  std::unique_ptr<ShardedEngine> sharded;
  if (args.Has("threads") || args.Has("shards")) {
    if (args.Has("algorithm")) {
      return PrintUsage(
          "--algorithm does not combine with --threads/--shards (the "
          "sharded engine is its own algorithm)");
    }
    const int threads = args.GetInt("threads", 1);
    if (threads < 1) return PrintUsage("--threads must be >= 1");
    const int shards = args.GetInt("shards", threads > 1 ? 2 * threads : 4);
    if (shards < 1 || shards > ShardedDiscoverer::kMaxShards) {
      return PrintUsage("--shards must be in [1, " +
                        std::to_string(ShardedDiscoverer::kMaxShards) + "]");
    }
    ShardedEngine::Config config;
    config.num_shards = shards;
    config.num_threads = threads;
    config.options = options;
    config.tau = tau;
    sharded = std::make_unique<ShardedEngine>(&relation, config);
  } else {
    const std::string algorithm = args.Get("algorithm", "STopDown");
    std::string store_dir;
    if (algorithm.rfind("FS", 0) == 0) store_dir = TempStoreDir("facts");
    auto disc_or = DiscoveryEngine::CreateDiscoverer(algorithm, &relation,
                                                     options, store_dir);
    if (!disc_or.ok()) return PrintUsage(disc_or.status().ToString());
    if (disc_or.value()->store() == nullptr) {
      return PrintUsage(algorithm +
                        " keeps no µ-store, so prominence-ranked serving is "
                        "unavailable; pick a BottomUp/TopDown family "
                        "algorithm");
    }
    DiscoveryEngine::Config config;
    config.options = options;
    config.tau = tau;
    engine = std::make_unique<DiscoveryEngine>(&relation,
                                               std::move(disc_or).value(),
                                               config);
  }

  FactFeed::Options feed_options;
  feed_options.fact_service = &service;
  std::unique_ptr<FactFeed> feed;
  if (sharded != nullptr) {
    feed = std::make_unique<FactFeed>(sharded.get(), nullptr, feed_options);
  } else {
    feed = std::make_unique<FactFeed>(engine.get(), nullptr, feed_options);
  }

  // Producer pushes the CSV; with --watch the main thread plays dashboard,
  // querying the service while ingestion runs (the whole point of the
  // snapshot design: the queries never block the stream).
  std::thread producer([&] {
    for (const Row& row : data.rows()) {
      if (!feed->Publish(row)) break;
    }
  });
  if (args.Has("watch")) {
    const int poll_ms = args.GetInt("poll-ms", 100);
    while (feed->processed() < data.rows().size()) {
      FactService::Snapshot snap = feed->Query();
      std::string headline = "(no facts yet)";
      FactService::Page top = snap.TopK(1);
      if (!top.facts.empty()) headline = snap.Explain(top.facts[0]);
      std::printf("watch epoch %llu: %zu facts / %llu arrivals | %s\n",
                  static_cast<unsigned long long>(snap.epoch()),
                  snap.fact_count(),
                  static_cast<unsigned long long>(snap.arrivals()),
                  headline.c_str());
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    }
  }
  producer.join();
  feed->Drain();
  feed->Stop();

  auto flags_or = ParseFactsFlags(args, relation);
  if (!flags_or.ok()) return PrintUsage(flags_or.status().message());
  if (args.Get("format", "text") == "json") {
    PrintFactsJson(service.Acquire(), flags_or.value());
  } else {
    PrintFactPages(service.Acquire(), flags_or.value());
  }
  return 0;
}

namespace {

/// SIGINT/SIGTERM ask the serve loop to wind down gracefully.
std::atomic<bool> g_serve_stop{false};

void HandleStopSignal(int) { g_serve_stop.store(true); }

}  // namespace

int RunServe(const Args& args) {
  auto data_or = LoadCsvFlag(args);
  if (!data_or.ok()) return PrintUsage(data_or.status().ToString());
  const Dataset& data = data_or.value();

  DiscoveryOptions options;
  options.max_bound_dims = args.GetInt("dhat", -1);
  options.max_measure_dims = args.GetInt("mhat", -1);
  if (Status st = ApplyStorageFlags(args, &options.storage); !st.ok()) {
    return PrintUsage(st.message());
  }

  Relation relation(data.schema());
  FactService::Options service_options;
  service_options.entity = args.Get("entity");
  if (!service_options.entity.empty() &&
      data.schema().DimensionIndex(service_options.entity) < 0) {
    return PrintUsage("--entity names no dimension");
  }
  FactService service(&relation, service_options);

  const std::string algorithm = args.Get("algorithm", "STopDown");
  std::string store_dir;
  if (algorithm.rfind("FS", 0) == 0) store_dir = TempStoreDir("serve");
  auto disc_or = DiscoveryEngine::CreateDiscoverer(algorithm, &relation,
                                                   options, store_dir);
  if (!disc_or.ok()) return PrintUsage(disc_or.status().ToString());
  if (disc_or.value()->store() == nullptr) {
    return PrintUsage(algorithm +
                      " keeps no µ-store, so prominence-ranked serving is "
                      "unavailable; pick a BottomUp/TopDown family "
                      "algorithm");
  }
  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = args.GetDouble("tau", 2.0);
  DiscoveryEngine engine(&relation, std::move(disc_or).value(), config);

  // Ingest through the same FactFeed path as `facts`, so a server over a
  // CSV lands on the same epoch as the in-process query — the smoke test
  // byte-diffs the two.
  {
    FactFeed::Options feed_options;
    feed_options.fact_service = &service;
    FactFeed feed(&engine, nullptr, feed_options);
    for (const Row& row : data.rows()) {
      if (!feed.Publish(row)) break;
    }
    feed.Drain();
    feed.Stop();
  }

  net::FactServer::Options server_options;
  server_options.net.host = args.Get("host", "127.0.0.1");
  const int port = args.GetInt("port", 8080);
  if (port < 0 || port > 65535) {
    return PrintUsage("--port must be in [0, 65535] (0 = kernel-assigned)");
  }
  server_options.net.port = static_cast<uint16_t>(port);
  const int max_connections = args.GetInt("max-connections", 64);
  if (max_connections < 1) {
    return PrintUsage("--max-connections must be >= 1");
  }
  server_options.net.max_connections = max_connections;
  const int cache = args.GetInt("cache", 512);
  if (cache < 0) return PrintUsage("--cache must be >= 0 (0 disables)");
  server_options.cache_capacity = static_cast<size_t>(cache);

  net::FactServer server(&service, &relation, server_options);
  Status st = server.Listen();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (args.Has("port-file")) {
    // Written after the socket is bound: a waiting script reads the file
    // and knows the server is accepting.
    std::FILE* f = std::fopen(args.Get("port-file").c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --port-file %s\n",
                   args.Get("port-file").c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server.port());
    std::fclose(f);
  }
  {
    FactService::Snapshot snap = service.Acquire();
    std::printf(
        "serving %zu facts (epoch %llu) at http://%s:%u — endpoints: /topk "
        "/facts_for_tuple /facts_in_window /about /explain /statz /healthz; "
        "POST /quitquitquit (or SIGINT) to stop\n",
        snap.fact_count(), static_cast<unsigned long long>(snap.epoch()),
        server_options.net.host.c_str(), server.port());
    std::fflush(stdout);
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  server.set_external_stop(&g_serve_stop);
  st = server.Serve();
  if (!st.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const net::EpollServer::Stats& stats = server.net_stats();
  std::printf("served %llu request(s) over %llu connection(s), shed %llu\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.shed));
  return 0;
}

int RunCheckpoint(const Args& args) {
  if (!args.Has("dir")) return PrintUsage("--dir is required");
  if (args.Has("algorithm") && (args.Has("threads") || args.Has("shards"))) {
    // Same rule as discover: the sharded engine is its own algorithm.
    return PrintUsage(
        "--algorithm does not combine with --threads/--shards (the sharded "
        "engine is its own algorithm)");
  }
  auto opts_or = DurableOptionsFromFlags(args);
  if (!opts_or.ok()) return PrintUsage(opts_or.status().message());
  persist::DurableOptions opts = std::move(opts_or).value();

  Schema schema;
  Dataset data{Schema()};
  const bool streaming = args.Has("csv");
  if (streaming) {
    auto data_or = LoadCsvFlag(args);
    if (!data_or.ok()) return PrintUsage(data_or.status().ToString());
    data = std::move(data_or).value();
    schema = data.schema();
  }

  auto durable_or = persist::DurableEngine::Open(opts, schema);
  if (!durable_or.ok()) {
    std::fprintf(stderr, "%s\n", durable_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<persist::DurableEngine> durable =
      std::move(durable_or).value();

  if (streaming) {
    int rc = StreamIntoDurable(args, durable.get(), data);
    if (rc != 0) return rc;
  }

  if (args.Has("no-final")) {
    std::printf(
        "WAL holds %llu op(s) past the last checkpoint (checkpoint seq "
        "%llu, next op seq %llu); restore will replay them\n",
        static_cast<unsigned long long>(durable->ops_since_checkpoint()),
        static_cast<unsigned long long>(durable->next_seq() -
                                        durable->ops_since_checkpoint()),
        static_cast<unsigned long long>(durable->next_seq()));
    return 0;
  }
  Status st = durable->Checkpoint();
  if (!st.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("checkpointed at seq %llu (%s, %u tuples)\n",
              static_cast<unsigned long long>(durable->next_seq()),
              durable->algorithm().c_str(), durable->relation().size());
  return 0;
}

int RunRestore(const Args& args) {
  if (!args.Has("dir")) return PrintUsage("--dir is required");
  auto opts_or = DurableOptionsFromFlags(args);
  if (!opts_or.ok()) return PrintUsage(opts_or.status().message());
  persist::DurableOptions opts = std::move(opts_or).value();

  auto durable_or = persist::DurableEngine::Open(opts, Schema());
  if (!durable_or.ok()) {
    std::fprintf(stderr, "%s\n", durable_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<persist::DurableEngine> durable =
      std::move(durable_or).value();
  const persist::RecoveryInfo& info = durable->recovery();
  std::printf(
      "restored %s engine at seq %llu (snapshot seq %llu + %llu WAL ops), "
      "%u tuples (%u live)\n",
      durable->algorithm().c_str(),
      static_cast<unsigned long long>(durable->next_seq()),
      static_cast<unsigned long long>(info.snapshot_seq),
      static_cast<unsigned long long>(info.replayed_ops),
      durable->relation().size(), durable->relation().live_size());
  if (info.delta_chain > 0) {
    std::printf(
        "  via %llu delta checkpoint(s); %llu op(s) folded count-only\n",
        static_cast<unsigned long long>(info.delta_chain),
        static_cast<unsigned long long>(info.count_only_ops));
  }
  if (!info.delta_note.empty()) {
    std::printf("note: delta chain cut short: %s\n", info.delta_note.c_str());
  }
  if (info.tail_truncated) {
    std::printf("note: WAL tail dropped (%s); re-send ops from seq %llu\n",
                info.note.c_str(),
                static_cast<unsigned long long>(durable->next_seq()));
  }

  if (args.Has("csv")) {
    // Continue the stream under the snapshot's schema.
    auto table_or = CsvTable::Read(args.Get("csv"));
    if (!table_or.ok()) return PrintUsage(table_or.status().ToString());
    auto data_or =
        DatasetFromCsvTable(table_or.value(), durable->relation().schema());
    if (!data_or.ok()) return PrintUsage(data_or.status().ToString());
    int rc = StreamIntoDurable(args, durable.get(), data_or.value());
    if (rc != 0) return rc;
  }

  if (!args.Has("no-final")) {
    Status st = durable->Checkpoint();
    if (!st.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("checkpointed at seq %llu\n",
                static_cast<unsigned long long>(durable->next_seq()));
  }
  return 0;
}

namespace {

std::string WalRowToString(const Row& row) {
  std::string out = "[";
  for (size_t i = 0; i < row.dimensions.size(); ++i) {
    if (i > 0) out += ",";
    out += row.dimensions[i];
  }
  out += " |";
  for (double m : row.measures) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %g", m);
    out += buf;
  }
  out += "]";
  return out;
}

int DumpOneWal(const std::string& path, int limit) {
  auto contents_or = persist::ReadWal(path);
  if (!contents_or.ok()) {
    std::printf("%s: %s\n", path.c_str(),
                contents_or.status().ToString().c_str());
    return 1;
  }
  const persist::WalContents& contents = contents_or.value();
  std::printf("%s: start_seq %llu, %zu op(s)\n", path.c_str(),
              static_cast<unsigned long long>(contents.start_seq),
              contents.ops.size());
  int shown = 0;
  for (const persist::WalOp& op : contents.ops) {
    if (limit > 0 && shown++ >= limit) {
      std::printf("  ... (%zu more)\n", contents.ops.size() -
                                            static_cast<size_t>(limit));
      break;
    }
    switch (op.kind) {
      case persist::WalOpKind::kAppend:
        std::printf("  seq %llu append %s\n",
                    static_cast<unsigned long long>(op.seq),
                    WalRowToString(op.row).c_str());
        break;
      case persist::WalOpKind::kRemove:
        std::printf("  seq %llu remove tuple %u\n",
                    static_cast<unsigned long long>(op.seq), op.target);
        break;
      case persist::WalOpKind::kUpdate:
        std::printf("  seq %llu update tuple %u -> %s\n",
                    static_cast<unsigned long long>(op.seq), op.target,
                    WalRowToString(op.row).c_str());
        break;
    }
  }
  if (!contents.clean_tail) {
    std::printf("  ! tail dropped: %s\n", contents.tail_note.c_str());
  }
  return 0;
}

}  // namespace

int RunWalDump(const Args& args) {
  const int limit = args.GetInt("limit", 0);
  if (args.Has("wal")) return DumpOneWal(args.Get("wal"), limit);
  if (!args.Has("dir")) return PrintUsage("--wal or --dir is required");

  std::vector<persist::StoreFile> segments =
      persist::ListWalSegments(args.Get("dir"));
  if (segments.empty()) {
    std::printf("no WAL segments in %s\n", args.Get("dir").c_str());
    return 0;
  }
  int rc = 0;
  for (const persist::StoreFile& segment : segments) {
    rc = std::max(rc, DumpOneWal(segment.path, limit));
  }
  return rc;
}

}  // namespace cli
}  // namespace sitfact
