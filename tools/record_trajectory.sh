#!/usr/bin/env bash
# Records the repo's committed perf trajectory: runs the headline figure
# benches at DEFAULT scale and writes their BENCH_*.json to the repo root,
# where they are committed alongside the change that produced them. This is
# the harness/CI fix for the empty-trajectory bug: bench binaries used to
# drop JSON wherever they ran (usually an ignored build dir), so nothing
# ever landed where the trajectory collector and tools/bench_compare.py
# look. CI validates the committed files with
# `bench_compare.py --validate .`.
#
# Usage, from the repo root with a Release build in ./build:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   tools/record_trajectory.sh [bench ...]
#
# Default bench set: the end-to-end discovery figures this repo tracks
# release-over-release, plus the dominance-kernel micro bench. Unlike
# bench/baselines/ (smoke scale, comparison-count gate), the trajectory is
# recorded at SITFACT_BENCH_SCALE=1 so wall times reflect the real
# operating points.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD:-$ROOT/build}"
BENCHES=("$@")
if [ ${#BENCHES[@]} -eq 0 ]; then
  BENCHES=(fig07_time_baselines fig09_weather_time fig10_memory
           micro_dominance_batch serving_load)
fi

for name in "${BENCHES[@]}"; do
  bin="$BUILD/bench/bench_$name"
  [ -x "$bin" ] || { echo "missing $bin (build with SITFACT_BUILD_BENCH=ON)"; exit 1; }
  echo "== bench_$name (default scale)"
  SITFACT_BENCH_SCALE="${SITFACT_BENCH_SCALE:-1}" "$bin" --out "$ROOT" \
    > "$BUILD/bench_${name}_trajectory.log" 2>&1
  # The dominance kernels dispatch by SIMD tier (SITFACT_SIMD overrides
  # cpuid); surface the tier this recording actually ran under — it is
  # also stamped into the JSON as the top-level "simd_tier" field.
  grep -o '"simd_tier": "[a-z0-9]*"' "$ROOT/BENCH_$name.json" |
    sed "s/^/   recorded under /" || true
done
python3 "$ROOT/tools/bench_compare.py" --validate "$ROOT"
echo "trajectory written to $ROOT/BENCH_*.json — commit these files"
