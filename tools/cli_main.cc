// Entry point for sitfact_cli. Subcommand dispatch only; the work lives in
// cli_commands.cc so the pieces stay unit-testable.

#include <string>

#include "cli_commands.h"

int main(int argc, char** argv) {
  sitfact::cli::Args args;
  sitfact::Status parsed = sitfact::cli::ParseArgs(argc, argv, &args);
  if (!parsed.ok()) {
    return sitfact::cli::PrintUsage(parsed.message());
  }
  if (args.command == "generate") return sitfact::cli::RunGenerate(args);
  if (args.command == "discover") return sitfact::cli::RunDiscover(args);
  if (args.command == "query") return sitfact::cli::RunQuery(args);
  if (args.command == "facts") return sitfact::cli::RunFacts(args);
  if (args.command == "serve") return sitfact::cli::RunServe(args);
  if (args.command == "resume") return sitfact::cli::RunResume(args);
  if (args.command == "checkpoint") return sitfact::cli::RunCheckpoint(args);
  if (args.command == "restore") return sitfact::cli::RunRestore(args);
  if (args.command == "wal-dump") return sitfact::cli::RunWalDump(args);
  if (args.command == "help" || args.command == "--help") {
    return sitfact::cli::PrintUsage("");
  }
  return sitfact::cli::PrintUsage("unknown command: " + args.command);
}
