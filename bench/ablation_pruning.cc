// Ablation study for the design choices DESIGN.md calls out:
//   1. Constraint pruning (Prop. 3): BottomUp with the pruner disabled must
//      traverse every lattice node per subspace.
//   2. Tuple reduction (Prop. 1): BaselineSeq compares against all of R;
//      BottomUp compares only against skyline buckets.
//   3. Sharing across subspaces: plain vs S-variants (Fig. 8 measures time;
//      here we isolate traversed-constraint counts).
// Each row prints mean per-tuple time plus the cumulative work counters, so
// the causal chain (fewer visits -> fewer comparisons -> less time) is
// visible in one table.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/baseline_seq.h"
#include "core/bottom_up.h"
#include "core/shared_bottom_up.h"
#include "core/shared_top_down.h"
#include "core/top_down.h"
#include "harness.h"
#include "storage/memory_mu_store.h"

namespace sitfact {
namespace bench {
namespace {

struct AblationRow {
  const char* label;
  double per_tuple_ms;
  uint64_t comparisons;
  uint64_t traversed;
};

template <typename Algo, typename... Extra>
AblationRow RunAblation(const char* label, const Dataset& data,
                        Extra&&... extra) {
  Relation relation(data.schema());
  DiscoveryOptions options;
  options.max_bound_dims = 4;
  Algo disc(&relation, options, std::forward<Extra>(extra)...);
  std::vector<SkylineFact> facts;
  WallTimer timer;
  for (const Row& row : data.rows()) {
    facts.clear();
    disc.Discover(relation.Append(row), &facts);
  }
  return {label,
          timer.ElapsedSeconds() * 1000.0 / static_cast<double>(data.size()),
          disc.stats().comparisons, disc.stats().constraints_traversed};
}

void Run() {
  int n = Scaled(1200);
  Dataset data = MakeNbaData(n, 5, 6);
  std::vector<AblationRow> rows;

  rows.push_back(RunAblation<BaselineSeqDiscoverer>(
      "no tuple reduction (BaselineSeq)", data));
  rows.push_back(RunAblation<BottomUpDiscoverer>(
      "no constraint pruning (BottomUp, pruner off)", data,
      std::make_unique<MemoryMuStore>(), /*enable_pruning=*/false));
  rows.push_back(RunAblation<BottomUpDiscoverer>("BottomUp", data));
  rows.push_back(RunAblation<TopDownDiscoverer>("TopDown", data));
  rows.push_back(
      RunAblation<SharedBottomUpDiscoverer>("SBottomUp (sharing)", data));
  rows.push_back(
      RunAblation<SharedTopDownDiscoverer>("STopDown (sharing)", data));

  std::printf(
      "\n# Ablation: the paper's three ideas in isolation, NBA, n=%d, d=5, "
      "m=6, dhat=4\n",
      n);
  std::printf("%-46s  %14s  %14s  %14s\n", "configuration", "ms/tuple",
              "comparisons", "traversed");
  for (const auto& r : rows) {
    std::printf("%-46s  %14.4f  %14llu  %14llu\n", r.label, r.per_tuple_ms,
                static_cast<unsigned long long>(r.comparisons),
                static_cast<unsigned long long>(r.traversed));
  }
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("ablation_pruning");
  sitfact::bench::Run();
  return 0;
}
