// Figure 16 (repo extension, not from the paper): throughput scaling of the
// sharded parallel engine on the NBA stream. Settings follow Fig. 7(a)
// (d=5, m=7, d̂=4) with prominence ranking on, so both engines do the full
// per-arrival pipeline: append, discovery, context counting, ranking.
//
// The baseline is the sequential DiscoveryEngine over BottomUp (the
// invariant-1 algorithm the sharded engine parallelizes). The sharded runs
// fix K shards and sweep the worker-thread count; rows are fed through
// AppendBatch so the report merge of arrival i overlaps discovery of i+1.
//
// Speedups are wall-clock and therefore hardware-dependent: expect ~1x on a
// single-core container and >= 2x at 4 threads on a 4-core machine. The
// JSON (BENCH_fig16_parallel_scaling.json) records whatever this host
// measured.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/sharded_engine.h"
#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

constexpr double kTau = 2.0;

struct RunResult {
  double wall_seconds = 0;
  uint64_t facts = 0;
  uint64_t comparisons = 0;
  size_t memory_bytes = 0;
};

RunResult RunSequential(const Dataset& data, const DiscoveryOptions& options) {
  Relation relation(data.schema());
  auto disc_or =
      DiscoveryEngine::CreateDiscoverer("BottomUp", &relation, options);
  SITFACT_CHECK(disc_or.ok());
  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = kTau;
  DiscoveryEngine engine(&relation, std::move(disc_or).value(), config);

  RunResult result;
  WallTimer timer;
  for (const Row& row : data.rows()) {
    result.facts += engine.Append(row).facts.size();
  }
  result.wall_seconds = timer.ElapsedSeconds();
  result.comparisons = engine.discoverer().stats().comparisons;
  result.memory_bytes = engine.discoverer().ApproxMemoryBytes();
  return result;
}

RunResult RunSharded(const Dataset& data, const DiscoveryOptions& options,
                     int shards, int threads) {
  Relation relation(data.schema());
  ShardedEngine::Config config;
  config.num_shards = shards;
  config.num_threads = threads;
  config.options = options;
  config.tau = kTau;
  ShardedEngine engine(&relation, config);

  RunResult result;
  constexpr size_t kBatch = 512;
  const std::vector<Row>& rows = data.rows();
  WallTimer timer;
  for (size_t begin = 0; begin < rows.size(); begin += kBatch) {
    size_t count = std::min(kBatch, rows.size() - begin);
    for (const ArrivalReport& report : engine.AppendBatch(
             std::span<const Row>(rows.data() + begin, count))) {
      result.facts += report.facts.size();
    }
  }
  result.wall_seconds = timer.ElapsedSeconds();
  result.comparisons = engine.stats().comparisons;
  result.memory_bytes = engine.ApproxMemoryBytes();
  return result;
}

void Run() {
  int n = Scaled(2000);
  const int d = 5;
  const int m = 7;
  Dataset data = MakeNbaData(n, d, m);
  DiscoveryOptions options;
  options.max_bound_dims = 4;

  RunResult seq = RunSequential(data, options);
  RecordBench(BenchRecord{"sequential_BottomUp", static_cast<uint64_t>(n), d,
                          m, seq.wall_seconds * 1000.0, seq.comparisons,
                          seq.memory_bytes});

  std::printf(
      "# Fig. 16  Parallel scaling, NBA, n=%d, d=%d, m=%d, dhat=4, tau=%.1f\n",
      n, d, m, kTau);
  std::printf("%12s  %14s  %14s  %14s\n", "config", "wall_s", "tuples/s",
              "speedup");
  std::printf("%12s  %14.3f  %14.1f  %14.2f\n", "sequential", seq.wall_seconds,
              n / seq.wall_seconds, 1.0);

  const int kShards = 8;
  for (int threads : {1, 2, 4, 8}) {
    RunResult par = RunSharded(data, options, kShards, threads);
    SITFACT_CHECK_MSG(par.facts == seq.facts,
                      "sharded engine diverged from sequential");
    std::string label = "threads=" + std::to_string(threads);
    std::printf("%12s  %14.3f  %14.1f  %14.2f\n", label.c_str(),
                par.wall_seconds, n / par.wall_seconds,
                seq.wall_seconds / par.wall_seconds);
    RecordBench(BenchRecord{"sharded_" + label, static_cast<uint64_t>(n), d,
                            m, par.wall_seconds * 1000.0, par.comparisons,
                            par.memory_bytes});
  }
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig16_parallel_scaling");
  sitfact::bench::Run();
  return 0;
}
