// Figure 14: number of prominent facts per 1,000 tuples at τ = 10³ on the
// NBA stream (d=5, m=7, d̂=3, m̂=3). The paper's observation to reproduce:
// the rate oscillates in a band rather than decaying, because new seasons
// and new players keep forming fresh contexts that — once populated past τ
// tuples — can mint new prominent facts.

#include <cstdio>
#include <vector>

#include "prominence_stream.h"

namespace sitfact {
namespace bench {
namespace {

void Run() {
  int n = Scaled(30000);
  double tau = 1000.0;
  auto records = RunProminenceStream(n);

  std::printf(
      "\n# Fig. 14  Prominent facts per 1K tuples, NBA, d=5, m=7, dhat=3, "
      "mhat=3, tau=%.0f\n",
      tau);
  std::printf("%16s  %16s\n", "tuple_window", "prominent_facts");
  uint64_t window_start = 0;
  uint64_t count = 0;
  uint64_t total = 0;
  for (const auto& rec : records) {
    if (rec.max_prominence >= tau) {
      count += rec.top_profile.size();
      total += rec.top_profile.size();
    }
    if (rec.tuple_id - window_start == 1000 ||
        rec.tuple_id == records.size()) {
      std::printf("%8llu-%-7llu  %16llu\n",
                  static_cast<unsigned long long>(window_start + 1),
                  static_cast<unsigned long long>(rec.tuple_id),
                  static_cast<unsigned long long>(count));
      window_start = rec.tuple_id;
      count = 0;
    }
  }
  std::printf("# total prominent facts: %llu over %d tuples\n",
              static_cast<unsigned long long>(total), n);
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig14_prominence_rate");
  sitfact::bench::Run();
  return 0;
}
