// Section VII case study: stream the synthetic NBA dataset under the
// paper's setting (d=5, m=7, dhat=3, mhat=3) and report the prominent
// facts the way the paper's bullet list does — as narrated sentences —
// plus the tail of per-1K prominent-fact counts that Fig. 14 plots.
//
// The paper's own examples (Lamar Odom's 30/19/11, Iverson's 38/16,
// Stoudamire's 54 as a Trail Blazer) come from the real gamelog; ours come
// from the synthetic stream, so names differ while the *kind* of sentence
// and the selectivity (a handful of prominent facts per thousand arrivals)
// is the reproduction target.

#include <cstdio>
#include <string>
#include <vector>

#include "core/narrator.h"
#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

void Run() {
  const int n = Scaled(12000);
  const double tau = 500;
  Dataset data = MakeNbaData(n, 5, 7);
  Relation relation(data.schema());
  DiscoveryOptions options;
  options.max_bound_dims = 3;
  options.max_measure_dims = 3;
  auto disc_or =
      DiscoveryEngine::CreateDiscoverer("STopDown", &relation, options);
  SITFACT_CHECK(disc_or.ok());
  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = tau;
  DiscoveryEngine engine(&relation, std::move(disc_or).value(), config);

  int entity = data.schema().DimensionIndex("player");
  FactNarrator narrator(&relation, entity);

  std::printf(
      "# Case study (Sec. VII): NBA, d=5, m=7, dhat=3, mhat=3, tau=%.0f\n",
      tau);

  std::vector<int> per_1k;
  int in_window = 0;
  int shown = 0;
  for (size_t i = 0; i < data.rows().size(); ++i) {
    ArrivalReport report = engine.Append(data.rows()[i]);
    if (!report.prominent.empty()) {
      ++in_window;
      // Print a sample of the discovered facts, paper-bullet style.
      if (shown < 12 && i > static_cast<size_t>(n) / 2) {
        ++shown;
        std::printf("  [tuple %6zu] %s\n", i,
                    narrator.Narrate(report.tuple,
                                     report.prominent.front()).c_str());
      }
    }
    if ((i + 1) % 1000 == 0) {
      per_1k.push_back(in_window);
      in_window = 0;
    }
  }

  std::printf("\n# Arrivals with prominent facts per 1K tuples "
              "(Fig. 14 shape: oscillating, no downward trend)\n");
  std::printf("%12s  %s\n", "window", "count");
  for (size_t w = 0; w < per_1k.size(); ++w) {
    std::printf("%6zuK-%zuK  %5d\n", w, w + 1, per_1k[w]);
  }
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("case_study_nba");
  sitfact::bench::Run();
  return 0;
}
