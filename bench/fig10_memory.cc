// Figure 10: memory consumption on the NBA dataset (d=5, m=7), varying n.
//   (a) bytes held by each algorithm's private structures
//   (b) number of skyline tuples stored
// Expected shapes: BottomUp/SBottomUp store every skyline-constraint copy
// and grow several times faster than TopDown/STopDown (which store only
// maximal-constraint copies); C-CSC sits between, near the top-down family.

#include <string>
#include <vector>

#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

void Run() {
  int n = Scaled(2500);
  Dataset data = MakeNbaData(n, 5, 7);
  DiscoveryOptions options{.max_bound_dims = 4};
  const std::vector<std::string> algorithms = {
      "C-CSC", "BottomUp", "TopDown", "SBottomUp", "STopDown"};
  std::vector<StreamResult> results;
  for (const auto& algo : algorithms) {
    results.push_back(ReplayStream(algo, data, n / 10, options));
  }
  PrintSeriesTable("# Fig. 10(a)  Approx. memory (MB), NBA, d=5, m=7",
                   "tuple_id", results, [](const Sample& s) {
                     return static_cast<double>(s.memory_bytes) / 1e6;
                   });
  PrintSeriesTable("# Fig. 10(b)  Skyline tuples stored, NBA, d=5, m=7",
                   "tuple_id", results, [](const Sample& s) {
                     return static_cast<double>(s.stored_tuples);
                   });
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig10_memory");
  sitfact::bench::Run();
  return 0;
}
