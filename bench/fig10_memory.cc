// Figure 10: memory consumption on the NBA dataset (d=5, m=7), varying n.
//   (a) bytes held by each algorithm's private structures
//   (b) number of skyline tuples stored
//   (c) peak process RSS per engine × µ-store backend (d=7, the fig07
//       operating point where BottomUp's in-memory footprint peaks)
// Expected shapes: BottomUp/SBottomUp store every skyline-constraint copy
// and grow several times faster than TopDown/STopDown (which store only
// maximal-constraint copies); C-CSC sits between, near the top-down family.
// On the paged backend the resident set is bounded by the page-cache
// budget, so the BottomUp rows collapse toward the cache size while the
// memory-backend rows keep growing with state.

#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "harness.h"
#include "storage/storage_options.h"

namespace sitfact {
namespace bench {
namespace {

/// Replays `data` through `algo` on the given µ-store backend and returns
/// the child process's peak RSS. ru_maxrss is a process-lifetime high-water
/// mark, so each engine × backend configuration must run in its own forked
/// child (a shared process would report every later run at the level of the
/// hungriest earlier one); the child reports through a pipe.
size_t MeasurePeakRss(const std::string& algo, const Dataset& data,
                      const StorageConfig& storage) {
  int fds[2];
  SITFACT_CHECK(::pipe(fds) == 0);
  const pid_t pid = ::fork();
  SITFACT_CHECK(pid >= 0);
  if (pid == 0) {
    ::close(fds[0]);
    {
      Relation relation(data.schema());
      DiscoveryOptions options;
      options.max_bound_dims = 4;
      options.storage = storage;
      auto disc_or =
          DiscoveryEngine::CreateDiscoverer(algo, &relation, options, "");
      if (!disc_or.ok()) ::_exit(2);
      std::unique_ptr<Discoverer> disc = std::move(disc_or).value();
      std::vector<SkylineFact> facts;
      for (const Row& row : data.rows()) {
        TupleId t = relation.Append(row);
        facts.clear();
        disc->Discover(t, &facts);
      }
      const size_t rss = PeakRssBytes();
      (void)!::write(fds[1], &rss, sizeof(rss));
      // Scope ends here so the store destructor removes any spill file
      // before _exit skips static teardown.
    }
    ::_exit(0);
  }
  ::close(fds[1]);
  size_t rss = 0;
  const ssize_t got = ::read(fds[0], &rss, sizeof(rss));
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  SITFACT_CHECK_MSG(got == static_cast<ssize_t>(sizeof(rss)) &&
                        WIFEXITED(status) && WEXITSTATUS(status) == 0,
                    ("peak-RSS child failed for " + algo).c_str());
  return rss;
}

/// Panel (c): engine × backend peak RSS at the fig07 d=7 operating point.
/// Runs before the ReplayStream panels so the forked children inherit a
/// small parent image (copy-on-write pages count toward the child's RSS).
void RunRssPanel() {
  const int n = Scaled(1000);
  Dataset data = MakeNbaData(n, /*d=*/7, /*m=*/7);
  const std::vector<std::string> algorithms =
      FilterAlgorithms({"BottomUp", "TopDown", "SBottomUp", "STopDown"});

  StorageConfig memory;
  memory.backend = StorageBackend::kMemory;
  StorageConfig paged;
  paged.backend = StorageBackend::kPaged;
  paged.cache_bytes = 64u << 20;
  const std::vector<std::pair<std::string, StorageConfig>> backends = {
      {"memory", memory}, {"paged", paged}};

  std::printf(
      "\n# Fig. 10(c)  Peak RSS (MB), NBA, n=%d, d=7, m=7, dhat=4 "
      "(paged: --cache-mb 64)\n",
      n);
  std::printf("%12s  %14s  %14s\n", "algorithm", "memory", "paged");
  for (const auto& algo : algorithms) {
    std::printf("%12s", algo.c_str());
    for (const auto& [label, storage] : backends) {
      const size_t rss = MeasurePeakRss(algo, data, storage);
      std::printf("  %14.1f", static_cast<double>(rss) / 1e6);
      BenchRecord record;
      record.name = algo + "+" + label;
      record.n = static_cast<uint64_t>(n);
      record.d = 7;
      record.m = 7;
      record.peak_bytes = rss;
      RecordBench(std::move(record));
    }
    std::printf("\n");
  }
}

void Run() {
  RunRssPanel();

  int n = Scaled(2500);
  Dataset data = MakeNbaData(n, 5, 7);
  DiscoveryOptions options;
  options.max_bound_dims = 4;
  const std::vector<std::string> algorithms = {
      "C-CSC", "BottomUp", "TopDown", "SBottomUp", "STopDown"};
  std::vector<StreamResult> results;
  for (const auto& algo : algorithms) {
    results.push_back(ReplayStream(algo, data, n / 10, options));
  }
  PrintSeriesTable("# Fig. 10(a)  Approx. memory (MB), NBA, d=5, m=7",
                   "tuple_id", results, [](const Sample& s) {
                     return static_cast<double>(s.memory_bytes) / 1e6;
                   });
  PrintSeriesTable("# Fig. 10(b)  Skyline tuples stored, NBA, d=5, m=7",
                   "tuple_id", results, [](const Sample& s) {
                     return static_cast<double>(s.stored_tuples);
                   });
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig10_memory");
  sitfact::bench::Run();
  return 0;
}
