// Extension bench: incremental k-skyband fact discovery (core/kskyband.h),
// the "facts of other forms" direction from the paper's conclusion.
//
// Two questions:
//  (a) what does grading facts by near-miss count cost versus plain skyline
//      discovery (STopDown) at the same (d, m, dhat) settings?
//  (b) how does the k-skyband discoverer scale with k? Its per-arrival cost
//      is O(n + 2^d * d * subspaces) independent of k, so the k sweep
//      should be flat — unlike fact *counts*, which grow with k.

#include <cstdio>
#include <string>
#include <vector>

#include "core/kskyband.h"
#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

void PanelA() {
  const int n = Scaled(3000);
  Dataset data = MakeNbaData(n, 5, 7);
  DiscoveryOptions options;
  options.max_bound_dims = 3;
  options.max_measure_dims = 3;

  // Reference: plain skyline facts via STopDown.
  StreamResult sky = ReplayStream("STopDown", data, n, options);

  // k-skyband pass (k = 3): every fact plus how far from the skyline.
  Relation relation(data.schema());
  KSkybandDiscoverer::Options kopts;
  kopts.k = 3;
  kopts.max_bound_dims = 3;
  kopts.max_measure_dims = 3;
  KSkybandDiscoverer disc(&relation, kopts);
  std::vector<KSkybandFact> facts;
  uint64_t total_facts = 0;
  WallTimer timer;
  for (const Row& row : data.rows()) {
    TupleId t = relation.Append(row);
    facts.clear();
    disc.Discover(t, &facts);
    total_facts += facts.size();
  }
  double band_ms = timer.ElapsedMillis() / n;

  std::printf("# Extension (a): skyline facts vs 3-skyband facts, NBA, "
              "n=%d, d=5, m=7, dhat=3, mhat=3\n",
              n);
  std::printf("%-22s  %12s\n", "pipeline", "ms/tuple");
  std::printf("%-22s  %12.4f\n", "STopDown (k=1 facts)",
              sky.mean_per_tuple_ms);
  std::printf("%-22s  %12.4f   (%llu graded facts)\n", "KSkyband (k=3)",
              band_ms, static_cast<unsigned long long>(total_facts));
}

void PanelB() {
  const int n = Scaled(1500);
  Dataset data = MakeNbaData(n, 5, 7);
  std::printf("\n# Extension (b): k sweep — per-tuple cost is ~flat in k, "
              "fact volume grows\n");
  std::printf("%6s  %12s  %14s\n", "k", "ms/tuple", "facts_total");
  for (int k : {1, 2, 4, 8}) {
    Relation relation(data.schema());
    KSkybandDiscoverer::Options kopts;
    kopts.k = k;
    kopts.max_bound_dims = 3;
    kopts.max_measure_dims = 3;
    KSkybandDiscoverer disc(&relation, kopts);
    std::vector<KSkybandFact> facts;
    uint64_t total = 0;
    WallTimer timer;
    for (const Row& row : data.rows()) {
      TupleId t = relation.Append(row);
      facts.clear();
      disc.Discover(t, &facts);
      total += facts.size();
    }
    std::printf("%6d  %12.4f  %14llu\n", k, timer.ElapsedMillis() / n,
                static_cast<unsigned long long>(total));
  }
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("ext_kskyband");
  sitfact::bench::PanelA();
  sitfact::bench::PanelB();
  return 0;
}
