#ifndef SITFACT_BENCH_HARNESS_H_
#define SITFACT_BENCH_HARNESS_H_

// Shared stream-driver for the per-figure bench binaries. Each binary
// replays a generated dataset through one or more discovery algorithms,
// samples per-tuple latency and work counters at checkpoints, and prints the
// series the corresponding paper figure plots.
//
// Scaling: the 2014 experiments ran for hours on the full datasets; the
// defaults here are sized so the whole bench suite finishes on a laptop in
// minutes while preserving every qualitative shape (algorithm ordering,
// growth trends, crossovers). Set SITFACT_BENCH_SCALE=<float> to grow or
// shrink every stream length (e.g. 4 for a longer run closer to the paper's
// operating points).

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cpu.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/discoverer.h"
#include "core/engine.h"
#include "datagen/nba_generator.h"
#include "datagen/weather_generator.h"
#include "relation/dataset.h"

namespace sitfact {
namespace bench {

// ---------------------------------------------------------------------------
// Machine-readable results. Every bench binary writes BENCH_<name>.json so
// the perf trajectory of the repo can be tracked run-over-run (CI's bench
// job uploads them and tools/bench_compare.py gates regressions against
// bench/baselines/). The output directory resolves as: the --out flag, then
// $SITFACT_BENCH_OUT, then $SITFACT_BENCH_JSON_DIR (legacy), then the
// working directory — so CI and local runs stop scattering JSON into
// build/. ReplayStream records one entry per replay automatically; benches
// with bespoke drivers add entries by hand, and ScopedBenchJson at the top
// of main() guarantees at least a whole-process wall-time entry.

struct BenchRecord {
  std::string name;        // series label, e.g. the algorithm
  uint64_t n = 0;          // stream length
  int d = 0;               // dimension attributes
  int m = 0;               // measure attributes
  double wall_ms = 0;      // wall time of the measured region
  uint64_t comparisons = 0;  // dominance comparisons, when known
  size_t peak_bytes = 0;     // peak observed memory, when known
};

inline std::vector<BenchRecord>& BenchRecords() {
  static std::vector<BenchRecord> records;
  return records;
}

inline void RecordBench(BenchRecord record) {
  BenchRecords().push_back(std::move(record));
}

/// Peak resident set of the whole process so far, from the kernel's
/// ru_maxrss accounting. ReplayStream-driven benches report engine-owned
/// bytes (Discoverer::ApproxMemoryBytes) per sample; bespoke drivers with
/// no engine to ask (the kernel micro bench) sample this instead so their
/// trajectory rows carry real peaks rather than a hardwired 0. Monotonic
/// across a process, like any high-water mark.
inline size_t PeakRssBytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<size_t>(usage.ru_maxrss) * 1024;  // Linux reports KiB
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // labels are ASCII
    out += c;
  }
  return out;
}

/// Output directory override set by InitBenchOutput's --out flag; empty
/// falls through to the environment.
inline std::string& BenchOutDir() {
  static std::string dir;
  return dir;
}

/// Parses harness-level bench flags — currently `--out DIR` / `--out=DIR` —
/// and strips them from argv so binaries with their own argument parsing
/// (Google Benchmark) never see them. Call first thing in main().
inline void InitBenchOutput(int* argc, char** argv) {
  int out_i = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--out" && i + 1 < *argc) {
      BenchOutDir() = argv[++i];
      continue;
    }
    if (arg.rfind("--out=", 0) == 0) {
      BenchOutDir() = arg.substr(6);
      continue;
    }
    argv[out_i++] = argv[i];
  }
  *argc = out_i;
}

inline void WriteBenchJson(const std::string& bench_name) {
  std::string dir = BenchOutDir();
  if (dir.empty()) {
    for (const char* env : {"SITFACT_BENCH_OUT", "SITFACT_BENCH_JSON_DIR"}) {
      const char* v = std::getenv(env);
      if (v != nullptr && v[0] != '\0') {
        dir = v;
        break;
      }
    }
  }
  std::string path = !dir.empty()
                         ? dir + "/BENCH_" + bench_name + ".json"
                         : "BENCH_" + bench_name + ".json";
  if (!dir.empty()) {
    std::error_code ignored;
    std::filesystem::create_directories(dir, ignored);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  // The SIMD tier the dominance kernels actually dispatched to in this
  // process (cpuid detection ∧ any SITFACT_SIMD override), so a recorded
  // trajectory is attributable to the kernel tier that produced it.
  // bench_compare.py keys on records only and ignores this field.
  std::fprintf(f, "{\"bench\": \"%s\", \"simd_tier\": \"%s\", \"records\": [",
               JsonEscape(bench_name).c_str(),
               SimdTierName(ActiveSimdTier()));
  const std::vector<BenchRecord>& records = BenchRecords();
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "%s\n  {\"name\": \"%s\", \"n\": %llu, \"d\": %d, \"m\": %d, "
                 "\"wall_ms\": %.3f, \"comparisons\": %llu, "
                 "\"peak_bytes\": %llu}",
                 i == 0 ? "" : ",", JsonEscape(r.name).c_str(),
                 static_cast<unsigned long long>(r.n), r.d, r.m, r.wall_ms,
                 static_cast<unsigned long long>(r.comparisons),
                 static_cast<unsigned long long>(r.peak_bytes));
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  std::printf("\n# wrote %s (%zu records)\n", path.c_str(), records.size());
}

/// Put one of these at the top of main(): it times the whole run, appends a
/// "total" record, and writes BENCH_<name>.json on scope exit.
class ScopedBenchJson {
 public:
  explicit ScopedBenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}
  ~ScopedBenchJson() {
    RecordBench(BenchRecord{"total", 0, 0, 0, timer_.ElapsedMillis(), 0, 0});
    WriteBenchJson(bench_name_);
  }

  ScopedBenchJson(const ScopedBenchJson&) = delete;
  ScopedBenchJson& operator=(const ScopedBenchJson&) = delete;

 private:
  std::string bench_name_;
  WallTimer timer_;
};

inline double BenchScale() {
  const char* env = std::getenv("SITFACT_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::strtod(env, nullptr);
  return v > 0 ? v : 1.0;
}

inline int Scaled(int n) {
  return static_cast<int>(static_cast<double>(n) * BenchScale());
}

/// NBA stream projected onto the Table V / Table VI spaces for (d, m).
inline Dataset MakeNbaData(int n, int d, int m) {
  NbaGenerator::Config cfg;
  // Keep roughly the real data's tuples-per-season ratio at small n so new
  // seasons (fresh contexts) still appear.
  cfg.tuples_per_season = n > 8 ? n / 8 : 1;
  NbaGenerator gen(cfg);
  Dataset full = gen.Generate(n);
  auto proj = full.Project(NbaGenerator::DimensionsForD(d),
                           NbaGenerator::MeasuresForM(m));
  SITFACT_CHECK(proj.ok());
  return std::move(proj).value();
}

/// Weather stream projected onto the first d dimensions / m measures.
inline Dataset MakeWeatherData(int n, int d, int m) {
  WeatherGenerator::Config cfg;
  cfg.num_locations = 512;  // scaled-down station count for short streams
  cfg.records_per_day = n > 24 ? n / 24 : 1;
  WeatherGenerator gen(cfg);
  Dataset full = gen.Generate(n);
  auto proj = full.Project(WeatherGenerator::DimensionsForD(d),
                           WeatherGenerator::MeasuresForM(m));
  SITFACT_CHECK(proj.ok());
  return std::move(proj).value();
}

/// Applies the SITFACT_BENCH_ALGOS filter (comma-separated engine names) to
/// a bench's algorithm list; unset or empty keeps the list unchanged, and a
/// filter matching nothing is ignored rather than silently producing an
/// empty bench. Lets a local A/B run isolate one engine's row (e.g.
/// SITFACT_BENCH_ALGOS=C-CSC for the interleaved before/after protocol in
/// ROADMAP.md) without editing the bench source. CI never sets it, so gated
/// JSON always carries every row.
inline std::vector<std::string> FilterAlgorithms(
    std::vector<std::string> algorithms) {
  const char* env = std::getenv("SITFACT_BENCH_ALGOS");
  if (env == nullptr || env[0] == '\0') return algorithms;
  std::string list = env;
  std::vector<std::string> keep;
  size_t pos = 0;
  while (pos <= list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    std::string name = list.substr(pos, comma - pos);
    if (!name.empty()) keep.push_back(name);
    pos = comma + 1;
  }
  std::vector<std::string> out;
  for (auto& a : algorithms) {
    if (std::find(keep.begin(), keep.end(), a) != keep.end()) {
      out.push_back(std::move(a));
    }
  }
  return out.empty() ? std::move(algorithms) : out;
}

/// One checkpoint sample of a timed stream replay.
struct Sample {
  uint64_t tuple_id = 0;       // 1-based arrival count at the checkpoint
  double per_tuple_ms = 0;     // mean Discover() latency in the window
  uint64_t comparisons = 0;    // cumulative (Fig. 11a)
  uint64_t traversed = 0;      // cumulative (Fig. 11b)
  uint64_t stored_tuples = 0;  // current (Fig. 10b)
  size_t memory_bytes = 0;     // current (Fig. 10a)
  uint64_t file_reads = 0;     // cumulative (file stores)
  uint64_t file_writes = 0;
};

struct StreamResult {
  std::string algorithm;
  std::vector<Sample> samples;
  double total_seconds = 0;
  double mean_per_tuple_ms = 0;
};

/// Replays `data` through a fresh instance of `algorithm`, sampling at every
/// multiple of `window` arrivals. The relation is owned here so every replay
/// starts from an empty table.
inline StreamResult ReplayStream(const std::string& algorithm,
                                 const Dataset& data, int window,
                                 const DiscoveryOptions& options) {
  Relation relation(data.schema());
  std::string dir;
  if (algorithm.rfind("FS", 0) == 0) {
    dir = (std::filesystem::temp_directory_path() /
           ("sitfact_bench_" + algorithm))
              .string();
  }
  auto disc_or =
      DiscoveryEngine::CreateDiscoverer(algorithm, &relation, options, dir);
  SITFACT_CHECK_MSG(disc_or.ok(), disc_or.status().ToString().c_str());
  std::unique_ptr<Discoverer> disc = std::move(disc_or).value();

  StreamResult result;
  result.algorithm = algorithm;
  std::vector<SkylineFact> facts;
  WallTimer total;
  double window_ms = 0;
  int in_window = 0;
  for (size_t i = 0; i < data.rows().size(); ++i) {
    TupleId t = relation.Append(data.rows()[i]);
    facts.clear();
    WallTimer timer;
    disc->Discover(t, &facts);
    window_ms += timer.ElapsedMillis();
    ++in_window;
    if (in_window == window || i + 1 == data.rows().size()) {
      Sample s;
      s.tuple_id = i + 1;
      s.per_tuple_ms = window_ms / in_window;
      s.comparisons = disc->stats().comparisons;
      s.traversed = disc->stats().constraints_traversed;
      s.stored_tuples = disc->StoredTupleCount();
      s.memory_bytes = disc->ApproxMemoryBytes();
      if (disc->store() != nullptr) {
        s.file_reads = disc->store()->stats().file_reads;
        s.file_writes = disc->store()->stats().file_writes;
      }
      result.samples.push_back(s);
      window_ms = 0;
      in_window = 0;
    }
  }
  result.total_seconds = total.ElapsedSeconds();
  result.mean_per_tuple_ms =
      result.total_seconds * 1000.0 / static_cast<double>(data.size());

  BenchRecord record;
  record.name = algorithm;
  record.n = data.size();
  record.d = data.schema().num_dimensions();
  record.m = data.schema().num_measures();
  record.wall_ms = result.total_seconds * 1000.0;
  record.comparisons = disc->stats().comparisons;
  for (const Sample& s : result.samples) {
    record.peak_bytes = std::max(record.peak_bytes, s.memory_bytes);
  }
  RecordBench(std::move(record));
  return result;
}

/// Prints one figure series as an aligned table: rows = checkpoints,
/// columns = algorithms, cell = the chosen metric.
template <typename MetricFn>
void PrintSeriesTable(const std::string& title, const std::string& row_label,
                      const std::vector<StreamResult>& results,
                      MetricFn&& metric) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%12s", row_label.c_str());
  for (const auto& r : results) std::printf("  %14s", r.algorithm.c_str());
  std::printf("\n");
  size_t rows = 0;
  for (const auto& r : results) rows = std::max(rows, r.samples.size());
  for (size_t i = 0; i < rows; ++i) {
    uint64_t tid = 0;
    for (const auto& r : results) {
      if (i < r.samples.size()) tid = r.samples[i].tuple_id;
    }
    std::printf("%12llu", static_cast<unsigned long long>(tid));
    for (const auto& r : results) {
      if (i < r.samples.size()) {
        std::printf("  %14.4f", metric(r.samples[i]));
      } else {
        std::printf("  %14s", "-");
      }
    }
    std::printf("\n");
  }
}

/// Prints a one-row-per-configuration summary (the varying-d / varying-m
/// panels, which plot a single mean per configuration).
inline void PrintSummaryHeader(const std::string& title,
                               const std::string& param_name,
                               const std::vector<std::string>& algorithms) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%12s", param_name.c_str());
  for (const auto& a : algorithms) std::printf("  %14s", a.c_str());
  std::printf("\n");
}

inline void PrintSummaryRow(int param,
                            const std::vector<StreamResult>& results) {
  std::printf("%12d", param);
  for (const auto& r : results) {
    std::printf("  %14.4f", r.mean_per_tuple_ms);
  }
  std::printf("\n");
}

/// Integer-valued companion to PrintSeriesTable, for work counters
/// (comparison counts overflow the fixed-point time format).
template <typename MetricFn>
void PrintSeriesCountTable(const std::string& title,
                           const std::string& row_label,
                           const std::vector<StreamResult>& results,
                           MetricFn&& metric) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%12s", row_label.c_str());
  for (const auto& r : results) std::printf("  %14s", r.algorithm.c_str());
  std::printf("\n");
  size_t rows = 0;
  for (const auto& r : results) rows = std::max(rows, r.samples.size());
  for (size_t i = 0; i < rows; ++i) {
    uint64_t tid = 0;
    for (const auto& r : results) {
      if (i < r.samples.size()) tid = r.samples[i].tuple_id;
    }
    std::printf("%12llu", static_cast<unsigned long long>(tid));
    for (const auto& r : results) {
      if (i < r.samples.size()) {
        std::printf("  %14llu",
                    static_cast<unsigned long long>(metric(r.samples[i])));
      } else {
        std::printf("  %14s", "-");
      }
    }
    std::printf("\n");
  }
}

/// Comparison-count companion to PrintSummaryRow: the engines' cumulative
/// dominance comparisons at end of stream. Printed next to every wall-time
/// panel so counter-relaxed engines (C-CSC) stay auditable at a glance —
/// the same numbers land in the bench JSON per record.
inline void PrintComparisonsSummaryRow(
    int param, const std::vector<StreamResult>& results) {
  std::printf("%12d", param);
  for (const auto& r : results) {
    uint64_t c = r.samples.empty() ? 0 : r.samples.back().comparisons;
    std::printf("  %14llu", static_cast<unsigned long long>(c));
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace sitfact

#endif  // SITFACT_BENCH_HARNESS_H_
