// Figure 12: per-tuple execution time of the file-based implementations
// FSBottomUp and FSTopDown on the NBA dataset.
//   (a) varying n       (d=5, m=7)
//   (b) varying d in 4..7 (m=7)
//   (c) varying m in 4..7 (d=5)
// Expected shape — the reverse of the in-memory ordering: FSTopDown beats
// FSBottomUp by multiples, because it stores far fewer tuples, leaves most
// buckets empty (emptiness is known from the in-memory index, costing no
// IO), and therefore issues far fewer file reads and writes.

#include <string>
#include <vector>

#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

const std::vector<std::string> kAlgorithms = {"FSBottomUp", "FSTopDown"};

void PanelA() {
  int n = Scaled(48);
  Dataset data = MakeNbaData(n, 5, 7);
  DiscoveryOptions options;
  options.max_bound_dims = 4;
  std::vector<StreamResult> results;
  for (const auto& algo : kAlgorithms) {
    results.push_back(ReplayStream(algo, data, n / 4, options));
  }
  PrintSeriesTable(
      "# Fig. 12(a)  Execution time per tuple (ms), file-based, NBA, d=5, "
      "m=7",
      "tuple_id", results, [](const Sample& s) { return s.per_tuple_ms; });
  PrintSeriesTable("# Fig. 12(a) companion: cumulative file reads",
                   "tuple_id", results, [](const Sample& s) {
                     return static_cast<double>(s.file_reads);
                   });
  PrintSeriesTable("# Fig. 12(a) companion: cumulative file writes",
                   "tuple_id", results, [](const Sample& s) {
                     return static_cast<double>(s.file_writes);
                   });
}

void PanelBC(bool vary_d) {
  int n = Scaled(20);
  std::string title =
      vary_d ? "# Fig. 12(b)  Mean time per tuple (ms), file-based, NBA, n=" +
                   std::to_string(n) + ", m=7, varying d"
             : "# Fig. 12(c)  Mean time per tuple (ms), file-based, NBA, n=" +
                   std::to_string(n) + ", d=5, varying m";
  PrintSummaryHeader(title, vary_d ? "d" : "m", kAlgorithms);
  for (int p = 4; p <= 7; ++p) {
    Dataset data = vary_d ? MakeNbaData(n, p, 7) : MakeNbaData(n, 5, p);
    DiscoveryOptions options;
    options.max_bound_dims = 4;
    std::vector<StreamResult> results;
    for (const auto& algo : kAlgorithms) {
      results.push_back(ReplayStream(algo, data, n, options));
    }
    PrintSummaryRow(p, results);
  }
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig12_file_nba");
  sitfact::bench::PanelA();
  sitfact::bench::PanelBC(/*vary_d=*/true);
  sitfact::bench::PanelBC(/*vary_d=*/false);
  return 0;
}
