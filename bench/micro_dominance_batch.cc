// Micro bench for the batched dominance kernel (skyline/dominance_batch.h)
// against the scalar per-pair oracle it replaces on the discovery hot path.
// Four shapes bracket the real call sites:
//   scalar_partition   one Relation::Partition per pair (pre-batch hot path)
//   range_full         PartitionRange over contiguous history blocks
//                      (k-skyband pass 1, BaselineSeq scans)
//   batch_masked       PartitionBatchMasked over an id list (µ buckets,
//                      CSC candidate scans), |m| = 3 of 7 measures
//   ramped_scan        BlockedPartitionScan with per-probe early exit at a
//                      random depth (the CSC query profile)
// The `comparisons` field records tuple pairs partitioned — a deterministic
// function of the seeded input, so CI's bench-compare gate and the
// bench-smoke ctest label can catch kernel regressions. Billing note:
// ramped_scan bills exactly the pairs its early-exit consumer consumes
// (stop_p + 1 per probe, stops drawn from Rng(13)), so its count — e.g.
// 3,831,440 at default scale — intentionally differs from the 64×n
// full-scan variants; dominance_batch_test pins the formula and the
// default-scale constant so the comparison gate can't absorb real drift.
// The kernels dispatch through the SIMD tier table (scalar/SSE2/AVX2,
// skyline/dominance_simd.h); comparisons are tier-independent, wall time
// is not, and the dispatched tier is stamped into the JSON. peak_bytes
// carries the process peak RSS at each record (PeakRssBytes — there is no
// engine here to report engine-owned bytes).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/cpu.h"
#include "common/rng.h"
#include "harness.h"
#include "skyline/dominance.h"
#include "skyline/dominance_batch.h"

namespace sitfact {
namespace bench {
namespace {

Relation MakeRelation(int n, int nm) {
  std::vector<DimensionAttribute> dims = {{"d0"}, {"d1"}};
  std::vector<MeasureAttribute> meas;
  for (int j = 0; j < nm; ++j) {
    meas.push_back({"m" + std::to_string(j), j % 2 == 1
                                                 ? Direction::kSmallerIsBetter
                                                 : Direction::kLargerIsBetter});
  }
  Relation r(Schema(std::move(dims), std::move(meas)));
  Rng rng(2024);
  Row row;
  row.dimensions = {"a", "b"};
  for (int i = 0; i < n; ++i) {
    row.measures.clear();
    for (int j = 0; j < nm; ++j) {
      row.measures.push_back(static_cast<double>(rng.NextBounded(64)));
    }
    r.Append(row);
  }
  return r;
}

void Report(const char* name, int n, int nm, double wall_ms, uint64_t pairs) {
  std::printf("%-18s  %9llu pairs  %8.2f ms  %6.2f ns/pair\n", name,
              static_cast<unsigned long long>(pairs), wall_ms,
              pairs > 0 ? wall_ms * 1e6 / static_cast<double>(pairs) : 0.0);
  RecordBench(BenchRecord{name, static_cast<uint64_t>(n), 2, nm, wall_ms,
                          pairs, PeakRssBytes()});
}

void Run() {
  const int n = std::max(Scaled(60000), 1000);
  const int nm = 7;
  const int probes = 64;
  Relation r = MakeRelation(n, nm);
  const MeasureMask m3 = 0b0010011;  // three of seven measures
  volatile uint64_t sink = 0;

  // scalar_partition: the pre-batch per-pair oracle.
  {
    WallTimer timer;
    uint64_t pairs = 0;
    for (int p = 0; p < probes; ++p) {
      TupleId t = static_cast<TupleId>((p * 997) % n);
      for (TupleId o = 0; o < static_cast<TupleId>(n); ++o) {
        Relation::MeasurePartition part = r.Partition(t, o);
        sink = sink + part.worse;
        ++pairs;
      }
    }
    Report("scalar_partition", n, nm, timer.ElapsedMillis(), pairs);
  }

  std::vector<Relation::MeasurePartition> parts(static_cast<size_t>(n));

  // range_full: contiguous history scan, all measures.
  {
    WallTimer timer;
    uint64_t pairs = 0;
    for (int p = 0; p < probes; ++p) {
      TupleId t = static_cast<TupleId>((p * 997) % n);
      PartitionRange(r, t, 0, static_cast<TupleId>(n), parts.data());
      sink = sink + parts[static_cast<size_t>(p)].worse;
      pairs += static_cast<uint64_t>(n);
    }
    Report("range_full", n, nm, timer.ElapsedMillis(), pairs);
  }

  // batch_masked: gather over a shuffled id list, 3-measure subspace.
  {
    std::vector<TupleId> ids(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
    Rng rng(7);
    for (size_t i = ids.size(); i > 1; --i) {
      std::swap(ids[i - 1], ids[rng.NextBounded(i)]);
    }
    WallTimer timer;
    uint64_t pairs = 0;
    for (int p = 0; p < probes; ++p) {
      TupleId t = static_cast<TupleId>((p * 997) % n);
      PartitionBatchMasked(r, t, ids.data(), ids.size(), m3, parts.data());
      sink = sink + parts[static_cast<size_t>(p)].worse;
      pairs += static_cast<uint64_t>(n);
    }
    Report("batch_masked", n, nm, timer.ElapsedMillis(), pairs);
  }

  // ramped_scan: early-exit consumer; exit depth cycles 1..~n/4 so both the
  // tiny-scan and deep-scan ends of the ramp are exercised.
  {
    WallTimer timer;
    uint64_t pairs = 0;
    Rng rng(13);
    for (int p = 0; p < probes * 8; ++p) {
      TupleId t = static_cast<TupleId>((p * 131) % n);
      TupleId stop = static_cast<TupleId>(
          1 + rng.NextBounded(static_cast<uint64_t>(n) / 4));
      BlockedPartitionRangeScan scan(r, t, static_cast<TupleId>(n), m3);
      for (TupleId o = 0; o < static_cast<TupleId>(n); ++o) {
        sink = sink + scan.at(o).worse;
        ++pairs;
        if (o >= stop) break;
      }
    }
    Report("ramped_scan", n, nm, timer.ElapsedMillis(), pairs);
  }

  if (sink == 0xdeadbeef) std::printf("# impossible\n");
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("micro_dominance_batch");
  std::printf("# micro_dominance_batch: batched kernel vs scalar oracle\n");
  std::printf("# simd tier: %s (detected %s)\n",
              sitfact::SimdTierName(sitfact::ActiveSimdTier()),
              sitfact::SimdTierName(sitfact::DetectSimdTier()));
  sitfact::bench::Run();
  return 0;
}
