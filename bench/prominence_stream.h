#ifndef SITFACT_BENCH_PROMINENCE_STREAM_H_
#define SITFACT_BENCH_PROMINENCE_STREAM_H_

// Shared driver for the prominence experiments (Sec. VII / Figs. 14-15):
// replays an NBA stream through a DiscoveryEngine with the case study's
// parameters (d=5, m=7, d̂=3, m̂=3) and records, per arrival, the maximum
// prominence and the (bound(C), |M|) profile of the facts attaining it.

#include <memory>
#include <vector>

#include "common/bits.h"
#include "common/logging.h"
#include "core/engine.h"
#include "harness.h"

namespace sitfact {
namespace bench {

struct ProminentRecord {
  uint64_t tuple_id = 0;
  double max_prominence = 0;  // 0 when the arrival produced no facts
  /// One entry per fact tying the maximum: (bound(C), |M|).
  std::vector<std::pair<int, int>> top_profile;
};

/// Replays `n` NBA tuples and collects per-arrival prominence records.
/// The τ filter is applied by the caller (records keep raw maxima so one
/// replay serves every τ in Fig. 15's sweep).
inline std::vector<ProminentRecord> RunProminenceStream(int n) {
  Dataset data = MakeNbaData(n, /*d=*/5, /*m=*/7);
  Relation relation(data.schema());
  DiscoveryOptions options;
  options.max_bound_dims = 3;
  options.max_measure_dims = 3;
  // SBottomUp: fast discovery and O(1) skyline-size lookups (Invariant 1).
  auto disc_or =
      DiscoveryEngine::CreateDiscoverer("SBottomUp", &relation, options);
  SITFACT_CHECK(disc_or.ok());
  DiscoveryEngine::Config config;
  config.options = options;
  config.tau = 0.0;  // rank everything; thresholds applied downstream
  DiscoveryEngine engine(&relation, std::move(disc_or).value(), config);

  std::vector<ProminentRecord> records;
  records.reserve(data.size());
  for (const Row& row : data.rows()) {
    ArrivalReport report = engine.Append(row);
    ProminentRecord rec;
    rec.tuple_id = report.tuple + 1;
    if (!report.ranked.empty()) {
      rec.max_prominence = report.ranked.front().prominence;
      for (const RankedFact& f : report.ranked) {
        if (f.prominence < rec.max_prominence) break;
        rec.top_profile.emplace_back(f.fact.constraint.BoundCount(),
                                     PopCount(f.fact.subspace));
      }
    }
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace bench
}  // namespace sitfact

#endif  // SITFACT_BENCH_PROMINENCE_STREAM_H_
