// Figure 7: per-tuple execution time of BaselineSeq, BaselineIdx, C-CSC,
// BottomUp and TopDown on the NBA dataset.
//   (a) varying n       (d=5, m=7)
//   (b) varying d in 4..7 (m=7)
//   (c) varying m in 4..7 (d=5)
// Settings per Sec. VI-A: d̂ = 4, m̂ = m. The paper's qualitative result:
// BottomUp/TopDown beat the baselines by orders of magnitude and C-CSC is
// the strongest competitor; every algorithm grows exponentially with d and
// m. Each wall-time panel is paired with a cumulative comparison-count
// table: comparisons are the deterministic gated metric, and C-CSC's
// counters are relaxed from the bit-identical contract (its candidate sets
// are index-pruned since the SubspaceIndex rebuild), so the counts are
// printed per engine to keep them auditable alongside the JSON.

#include <string>
#include <utility>
#include <vector>

#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

std::vector<std::string> Algorithms() {
  return FilterAlgorithms(
      {"BaselineSeq", "BaselineIdx", "C-CSC", "BottomUp", "TopDown"});
}

void PanelA() {
  int n = Scaled(3000);
  Dataset data = MakeNbaData(n, /*d=*/5, /*m=*/7);
  DiscoveryOptions options;
  options.max_bound_dims = 4;
  std::vector<StreamResult> results;
  for (const auto& algo : Algorithms()) {
    results.push_back(ReplayStream(algo, data, n / 8, options));
  }
  PrintSeriesTable(
      "# Fig. 7(a)  Execution time per tuple (ms), NBA, d=5, m=7, dhat=4",
      "tuple_id", results, [](const Sample& s) { return s.per_tuple_ms; });
  PrintSeriesCountTable(
      "# Fig. 7(a)  Cumulative dominance comparisons (same replays)",
      "tuple_id", results, [](const Sample& s) { return s.comparisons; });
}

/// Runs one varying-parameter panel and prints its wall-time table followed
/// by the matching comparison-count table.
void RunSummaryPanel(const std::string& time_title,
                     const std::string& comparisons_title,
                     const std::string& param_name,
                     const std::vector<std::pair<int, Dataset>>& configs) {
  int n = Scaled(1000);
  std::vector<std::pair<int, std::vector<StreamResult>>> panel;
  for (const auto& [param, data] : configs) {
    DiscoveryOptions options;
    options.max_bound_dims = 4;
    std::vector<StreamResult> results;
    for (const auto& algo : Algorithms()) {
      results.push_back(ReplayStream(algo, data, n, options));
    }
    panel.emplace_back(param, std::move(results));
  }
  PrintSummaryHeader(time_title, param_name, Algorithms());
  for (const auto& [param, results] : panel) PrintSummaryRow(param, results);
  PrintSummaryHeader(comparisons_title, param_name, Algorithms());
  for (const auto& [param, results] : panel) {
    PrintComparisonsSummaryRow(param, results);
  }
}

void PanelB() {
  int n = Scaled(1000);
  std::vector<std::pair<int, Dataset>> configs;
  for (int d = 4; d <= 7; ++d) configs.emplace_back(d, MakeNbaData(n, d, 7));
  RunSummaryPanel(
      "# Fig. 7(b)  Mean execution time per tuple (ms), NBA, n=" +
          std::to_string(n) + ", m=7, varying d",
      "# Fig. 7(b)  Cumulative dominance comparisons (same replays)", "d",
      configs);
}

void PanelC() {
  int n = Scaled(1000);
  std::vector<std::pair<int, Dataset>> configs;
  for (int m = 4; m <= 7; ++m) configs.emplace_back(m, MakeNbaData(n, 5, m));
  RunSummaryPanel(
      "# Fig. 7(c)  Mean execution time per tuple (ms), NBA, n=" +
          std::to_string(n) + ", d=5, varying m",
      "# Fig. 7(c)  Cumulative dominance comparisons (same replays)", "m",
      configs);
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig07_time_baselines");
  sitfact::bench::PanelA();
  sitfact::bench::PanelB();
  sitfact::bench::PanelC();
  std::printf(
      "\n# Note: panels (b)/(c) run at a scaled-down n, where the lattice\n"
      "# algorithms' fixed per-tuple traversal cost can exceed the baselines'\n"
      "# O(n) scan for d >= 6. Panel (a)'s growth curves show the real\n"
      "# story: baselines grow with n while BottomUp/TopDown stay flat, so\n"
      "# the paper's orders-of-magnitude gap reappears at its n = 50,000\n"
      "# operating point (rerun with SITFACT_BENCH_SCALE=8 to see it).\n");
  return 0;
}
