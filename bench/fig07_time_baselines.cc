// Figure 7: per-tuple execution time of BaselineSeq, BaselineIdx, C-CSC,
// BottomUp and TopDown on the NBA dataset.
//   (a) varying n       (d=5, m=7)
//   (b) varying d in 4..7 (m=7)
//   (c) varying m in 4..7 (d=5)
// Settings per Sec. VI-A: d̂ = 4, m̂ = m. The paper's qualitative result:
// BottomUp/TopDown beat the baselines by orders of magnitude and C-CSC by
// about one order; every algorithm grows exponentially with d and m.

#include <string>
#include <vector>

#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

const std::vector<std::string> kAlgorithms = {
    "BaselineSeq", "BaselineIdx", "C-CSC", "BottomUp", "TopDown"};

void PanelA() {
  int n = Scaled(3000);
  Dataset data = MakeNbaData(n, /*d=*/5, /*m=*/7);
  DiscoveryOptions options{.max_bound_dims = 4};
  std::vector<StreamResult> results;
  for (const auto& algo : kAlgorithms) {
    results.push_back(ReplayStream(algo, data, n / 8, options));
  }
  PrintSeriesTable(
      "# Fig. 7(a)  Execution time per tuple (ms), NBA, d=5, m=7, dhat=4",
      "tuple_id", results, [](const Sample& s) { return s.per_tuple_ms; });
}

void PanelB() {
  int n = Scaled(1000);
  PrintSummaryHeader(
      "# Fig. 7(b)  Mean execution time per tuple (ms), NBA, n=" +
          std::to_string(n) + ", m=7, varying d",
      "d", kAlgorithms);
  for (int d = 4; d <= 7; ++d) {
    Dataset data = MakeNbaData(n, d, 7);
    DiscoveryOptions options{.max_bound_dims = 4};
    std::vector<StreamResult> results;
    for (const auto& algo : kAlgorithms) {
      results.push_back(ReplayStream(algo, data, n, options));
    }
    PrintSummaryRow(d, results);
  }
}

void PanelC() {
  int n = Scaled(1000);
  PrintSummaryHeader(
      "# Fig. 7(c)  Mean execution time per tuple (ms), NBA, n=" +
          std::to_string(n) + ", d=5, varying m",
      "m", kAlgorithms);
  for (int m = 4; m <= 7; ++m) {
    Dataset data = MakeNbaData(n, 5, m);
    DiscoveryOptions options{.max_bound_dims = 4};
    std::vector<StreamResult> results;
    for (const auto& algo : kAlgorithms) {
      results.push_back(ReplayStream(algo, data, n, options));
    }
    PrintSummaryRow(m, results);
  }
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig07_time_baselines");
  sitfact::bench::PanelA();
  sitfact::bench::PanelB();
  sitfact::bench::PanelC();
  std::printf(
      "\n# Note: panels (b)/(c) run at a scaled-down n, where the lattice\n"
      "# algorithms' fixed per-tuple traversal cost can exceed the baselines'\n"
      "# O(n) scan for d >= 6. Panel (a)'s growth curves show the real\n"
      "# story: baselines grow with n while BottomUp/TopDown stay flat, so\n"
      "# the paper's orders-of-magnitude gap reappears at its n = 50,000\n"
      "# operating point (rerun with SITFACT_BENCH_SCALE=8 to see it).\n");
  return 0;
}
