// Ablation: forward skyline query evaluators (query/skyline_query.h).
// Not a paper figure — the paper's contribution is the reverse problem —
// but the query module backs the CLI and the differential test oracle, so
// its design choices get the same treatment: BNL vs sort-filter vs
// divide-and-conquer across context sizes and dimensionalities, reporting
// per-query latency and dominance comparisons.

#include <cstdio>
#include <string>
#include <vector>

#include "common/timer.h"
#include "harness.h"
#include "query/skyline_query.h"

namespace sitfact {
namespace bench {
namespace {

struct AlgoRow {
  QueryAlgorithm algo;
  const char* name;
};

const AlgoRow kAlgos[] = {
    {QueryAlgorithm::kBlockNestedLoops, "bnl"},
    {QueryAlgorithm::kSortFilter, "sfs"},
    {QueryAlgorithm::kDivideConquer, "dnc"},
};

void RunPanel(const char* title, int m) {
  std::printf("\n%s\n", title);
  std::printf("%10s", "n");
  for (const auto& a : kAlgos) {
    std::printf("  %10s_ms  %12s_cmp", a.name, a.name);
  }
  std::printf("  %10s\n", "skyline");

  for (int n : {1000, 5000, 20000, 80000}) {
    Dataset data = MakeNbaData(Scaled(n), 5, m);
    Relation relation(data.schema());
    for (const Row& row : data.rows()) relation.Append(row);
    std::vector<TupleId> ids(relation.size());
    for (TupleId t = 0; t < relation.size(); ++t) ids[t] = t;
    SkylineQueryEngine engine(&relation);
    MeasureMask full = relation.schema().FullMeasureMask();

    std::printf("%10d", n);
    size_t skyline_size = 0;
    for (const auto& a : kAlgos) {
      WallTimer timer;
      auto result = engine.EvaluateCandidates(ids, full, a.algo);
      double ms = timer.ElapsedMillis();
      std::printf("  %13.3f  %16llu", ms,
                  static_cast<unsigned long long>(result.stats.comparisons));
      skyline_size = result.skyline.size();
    }
    std::printf("  %10zu\n", skyline_size);
  }
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("query_algorithms");
  sitfact::bench::RunPanel(
      "# Query ablation (a): NBA full 7-measure space, one-shot skyline",
      7);
  sitfact::bench::RunPanel(
      "# Query ablation (b): NBA 4-measure space (smaller skylines)", 4);
  return 0;
}
