// Figure 11: work done by BottomUp, TopDown, SBottomUp and STopDown on the
// NBA dataset (d=5, m=7), varying n.
//   (a) cumulative tuple comparisons
//   (b) cumulative traversed constraints
// Expected shapes: sharing helps TopDown substantially (STopDown skips every
// pruned constraint in every subspace) but BottomUp only marginally (it
// already skips ancestors of dominated constraints; only the boundary
// non-skyline constraints differ).

#include <string>
#include <vector>

#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

void Run() {
  int n = Scaled(2500);
  Dataset data = MakeNbaData(n, 5, 7);
  DiscoveryOptions options;
  options.max_bound_dims = 4;
  const std::vector<std::string> algorithms = {"BottomUp", "TopDown",
                                               "SBottomUp", "STopDown"};
  std::vector<StreamResult> results;
  for (const auto& algo : algorithms) {
    results.push_back(ReplayStream(algo, data, n / 10, options));
  }
  PrintSeriesTable("# Fig. 11(a)  Cumulative comparisons, NBA, d=5, m=7",
                   "tuple_id", results, [](const Sample& s) {
                     return static_cast<double>(s.comparisons);
                   });
  PrintSeriesTable(
      "# Fig. 11(b)  Cumulative traversed constraints, NBA, d=5, m=7",
      "tuple_id", results,
      [](const Sample& s) { return static_cast<double>(s.traversed); });
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig11_work");
  sitfact::bench::Run();
  return 0;
}
