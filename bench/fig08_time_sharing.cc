// Figure 8: per-tuple execution time of C-CSC, BottomUp, TopDown, SBottomUp
// and STopDown on the NBA dataset — the comparison isolating the value of
// sharing computation across measure subspaces.
//   (a) varying n       (d=5, m=7)
//   (b) varying d in 4..7 (m=7)
//   (c) varying m in 4..7 (d=5)
// Expected shapes: C-CSC trails by ~an order of magnitude; the bottom-up
// algorithms beat the top-down ones on time (the space-time tradeoff);
// S-variants beat their plain versions, more so at larger d and m.

#include <string>
#include <vector>

#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

const std::vector<std::string> kAlgorithms = {
    "C-CSC", "BottomUp", "TopDown", "SBottomUp", "STopDown"};

void PanelA() {
  int n = Scaled(2500);
  Dataset data = MakeNbaData(n, 5, 7);
  DiscoveryOptions options;
  options.max_bound_dims = 4;
  std::vector<StreamResult> results;
  for (const auto& algo : kAlgorithms) {
    results.push_back(ReplayStream(algo, data, n / 10, options));
  }
  PrintSeriesTable(
      "# Fig. 8(a)  Execution time per tuple (ms), NBA, d=5, m=7, dhat=4",
      "tuple_id", results, [](const Sample& s) { return s.per_tuple_ms; });
}

void PanelBC(bool vary_d) {
  int n = Scaled(1000);
  std::string title =
      vary_d ? "# Fig. 8(b)  Mean execution time per tuple (ms), NBA, n=" +
                   std::to_string(n) + ", m=7, varying d"
             : "# Fig. 8(c)  Mean execution time per tuple (ms), NBA, n=" +
                   std::to_string(n) + ", d=5, varying m";
  PrintSummaryHeader(title, vary_d ? "d" : "m", kAlgorithms);
  for (int p = 4; p <= 7; ++p) {
    Dataset data = vary_d ? MakeNbaData(n, p, 7) : MakeNbaData(n, 5, p);
    DiscoveryOptions options;
    options.max_bound_dims = 4;
    std::vector<StreamResult> results;
    for (const auto& algo : kAlgorithms) {
      results.push_back(ReplayStream(algo, data, n, options));
    }
    PrintSummaryRow(p, results);
  }
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig08_time_sharing");
  sitfact::bench::PanelA();
  sitfact::bench::PanelBC(/*vary_d=*/true);
  sitfact::bench::PanelBC(/*vary_d=*/false);
  return 0;
}
