// Google-benchmark microbenchmarks for the individual substrates: the
// dominance kernel, Prop. 4 partitioning, pruner sets, constraint
// hashing, Algorithm 1 enumeration, k-d tree queries, µ-store bucket
// operations, CSC insertion, steady-state per-arrival discovery, CRC-32,
// CSV parsing, snapshot IO, and the k-skyband zeta transform.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "harness.h"

#include "common/crc32.h"
#include "common/csv.h"
#include "core/bottom_up.h"
#include "core/kskyband.h"
#include "core/shared_top_down.h"
#include "csc/compressed_skycube.h"
#include "harness.h"
#include "io/snapshot.h"
#include "lattice/constraint_enumerator.h"
#include "lattice/pruner_set.h"
#include "skyline/dominance.h"
#include "skyline/kdtree.h"
#include "storage/memory_mu_store.h"

namespace sitfact {
namespace bench {
namespace {

/// Shared fixture data: one NBA slice and its relation.
struct NbaFixture {
  NbaFixture() : data(MakeNbaData(4000, 5, 7)), relation(data.schema()) {
    for (const Row& row : data.rows()) relation.Append(row);
  }
  Dataset data;
  Relation relation;
};

NbaFixture& Fixture() {
  static auto* fixture = new NbaFixture();
  return *fixture;
}

void BM_DominanceFullSpace(benchmark::State& state) {
  const Relation& r = Fixture().relation;
  MeasureMask full = r.schema().FullMeasureMask();
  TupleId a = 17, b = 1042;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dominates(r, a, b, full));
  }
}
BENCHMARK(BM_DominanceFullSpace);

void BM_PartitionProp4(benchmark::State& state) {
  const Relation& r = Fixture().relation;
  TupleId a = 17, b = 1042;
  for (auto _ : state) {
    auto p = r.Partition(a, b);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PartitionProp4);

void BM_AgreeMask(benchmark::State& state) {
  const Relation& r = Fixture().relation;
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.AgreeMask(33, 2048));
  }
}
BENCHMARK(BM_AgreeMask);

void BM_PrunerSetAddAndQuery(benchmark::State& state) {
  for (auto _ : state) {
    PrunerSet set;
    for (DimMask p : {0b00011u, 0b01100u, 0b10001u, 0b01111u}) set.Add(p);
    bool pruned = false;
    for (DimMask q = 0; q < 32; ++q) pruned ^= set.IsPruned(q);
    benchmark::DoNotOptimize(pruned);
  }
}
BENCHMARK(BM_PrunerSetAddAndQuery);

void BM_ConstraintHash(benchmark::State& state) {
  const Relation& r = Fixture().relation;
  Constraint c = Constraint::ForTuple(r, 99, 0b10110);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.Hash());
  }
}
BENCHMARK(BM_ConstraintHash);

void BM_Alg1Enumeration(benchmark::State& state) {
  int d = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnumerateTupleConstraints(d, d));
  }
}
BENCHMARK(BM_Alg1Enumeration)->Arg(4)->Arg(5)->Arg(6)->Arg(7);

void BM_KdTreeDominatorQuery(benchmark::State& state) {
  const Relation& r = Fixture().relation;
  static KdTree* tree = [] {
    auto* t = new KdTree(&Fixture().relation);
    for (TupleId i = 0; i + 1 < Fixture().relation.size(); ++i) t->Insert(i);
    return t;
  }();
  TupleId probe = r.size() - 1;
  MeasureMask m = static_cast<MeasureMask>(state.range(0));
  for (auto _ : state) {
    int count = 0;
    tree->VisitDominators(probe, m, [&](TupleId) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_KdTreeDominatorQuery)->Arg(0b1111111)->Arg(0b0000111)->Arg(0b1);

void BM_MuStoreBucketRoundTrip(benchmark::State& state) {
  const Relation& r = Fixture().relation;
  MemoryMuStore store;
  Constraint c = Constraint::ForTuple(r, 7, 0b00101);
  MuStore::Context* ctx = store.GetOrCreate(c);
  ctx->Write(0b11, {1, 2, 3, 4, 5});
  std::vector<TupleId> bucket;
  for (auto _ : state) {
    ctx->Read(0b11, &bucket);
    bucket.push_back(7);
    ctx->Write(0b11, bucket);
    ctx->Erase(0b11, 7);
  }
}
BENCHMARK(BM_MuStoreBucketRoundTrip);

void BM_CscInsert(benchmark::State& state) {
  const Relation& r = Fixture().relation;
  SubspaceUniverse universe(7, 7);
  std::vector<MeasureMask> sky;
  uint64_t comparisons = 0;
  for (auto _ : state) {
    state.PauseTiming();
    CompressedSkycube cube(&universe);
    state.ResumeTiming();
    for (TupleId t = 0; t < 64; ++t) {
      sky.clear();
      cube.Insert(r, t, &sky, &comparisons);
    }
  }
  benchmark::DoNotOptimize(comparisons);
}
BENCHMARK(BM_CscInsert);

/// Steady-state per-arrival cost: preload a stream, then time Discover on
/// the remaining tuples (one per iteration, round robin over a tail slice).
template <typename Algo>
void SteadyStateDiscover(benchmark::State& state) {
  Dataset data = MakeNbaData(3000, 5, 7);
  Relation relation(data.schema());
  DiscoveryOptions options;
  options.max_bound_dims = 4;
  Algo disc(&relation, options);
  std::vector<SkylineFact> facts;
  for (int i = 0; i < 2800; ++i) {
    facts.clear();
    disc.Discover(relation.Append(data.rows()[i]), &facts);
  }
  size_t next = 2800;
  for (auto _ : state) {
    if (next >= data.rows().size()) {
      state.SkipWithError("stream exhausted");
      return;
    }
    facts.clear();
    disc.Discover(relation.Append(data.rows()[next++]), &facts);
    benchmark::DoNotOptimize(facts);
  }
}

void BM_SteadyStateBottomUp(benchmark::State& state) {
  SteadyStateDiscover<BottomUpDiscoverer>(state);
}
BENCHMARK(BM_SteadyStateBottomUp)->Iterations(150);

void BM_SteadyStateSharedTopDown(benchmark::State& state) {
  SteadyStateDiscover<SharedTopDownDiscoverer>(state);
}
BENCHMARK(BM_SteadyStateSharedTopDown)->Iterations(150);

void BM_SteadyStateKSkyband(benchmark::State& state) {
  // The k-skyband pass re-scans history each arrival; time it at the same
  // stream depth as the skyline-discovery steady states above.
  Dataset data = MakeNbaData(3000, 5, 7);
  Relation relation(data.schema());
  KSkybandDiscoverer::Options options;
  options.k = static_cast<int>(state.range(0));
  options.max_bound_dims = 4;
  KSkybandDiscoverer disc(&relation, options);
  std::vector<KSkybandFact> facts;
  for (int i = 0; i < 2800; ++i) relation.Append(data.rows()[i]);
  size_t next = 2800;
  for (auto _ : state) {
    if (next >= data.rows().size()) {
      state.SkipWithError("stream exhausted");
      return;
    }
    facts.clear();
    disc.Discover(relation.Append(data.rows()[next++]), &facts);
    benchmark::DoNotOptimize(facts);
  }
}
BENCHMARK(BM_SteadyStateKSkyband)->Arg(1)->Arg(4)->Iterations(150);

void BM_Crc32(benchmark::State& state) {
  std::vector<char> buffer(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32::Of(buffer.data(), buffer.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 10)->Arg(1 << 20);

void BM_CsvSplitLine(benchmark::State& state) {
  const std::string line =
      "Jordan,\"Chicago, IL\",SG,1992-93,Feb,Bulls,Knicks,42,6,9,1,3,2,4";
  std::vector<std::string> fields;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SplitCsvLine(line, &fields));
  }
}
BENCHMARK(BM_CsvSplitLine);

void BM_RelationSnapshotRoundTrip(benchmark::State& state) {
  const Relation& r = Fixture().relation;
  const std::string path =
      (std::filesystem::temp_directory_path() / "sitfact_micro.snap")
          .string();
  for (auto _ : state) {
    Status saved = SaveRelationSnapshot(r, path);
    auto loaded = LoadRelationSnapshot(path);
    benchmark::DoNotOptimize(loaded.ok() && saved.ok());
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(r.size()));
}
BENCHMARK(BM_RelationSnapshotRoundTrip)->Iterations(20);

}  // namespace
}  // namespace bench
}  // namespace sitfact

// Expanded BENCHMARK_MAIN() so the run also emits BENCH_micro_components.json
// (Google Benchmark owns the per-benchmark numbers; the JSON records the
// whole-process wall time like every other bench binary).
int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("micro_components");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
