// Serving-plane load generator: drives the epoll HTTP front end (src/net/)
// over loopback with a closed-loop and an open-loop client and reports
// p50/p99/p999 request latency per phase into the bench trajectory.
//
// The container CI runs on a single core, so the interesting numbers here
// are LATENCY distributions and cache behavior, not throughput; every
// latency record is written with comparisons=0 so tools/bench_compare.py
// reports it without gating on it (wall-clock on shared runners is noise).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "harness.h"
#include "net/fact_server.h"
#include "net/http_client.h"
#include "service/fact_service.h"

namespace sitfact {
namespace bench {
namespace {

double Percentile(std::vector<double>* sorted_micros, double p) {
  if (sorted_micros->empty()) return 0;
  const size_t idx = std::min(
      sorted_micros->size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_micros->size())));
  return (*sorted_micros)[idx];
}

struct Latencies {
  std::vector<double> micros;

  void Summarize(const std::string& phase, uint64_t requests,
                 double wall_ms) {
    std::sort(micros.begin(), micros.end());
    const double p50 = Percentile(&micros, 0.50);
    const double p99 = Percentile(&micros, 0.99);
    const double p999 = Percentile(&micros, 0.999);
    std::printf("%-12s %8llu reqs  %8.1f ms wall  p50 %7.1fus  p99 %7.1fus"
                "  p999 %7.1fus\n",
                phase.c_str(), static_cast<unsigned long long>(requests),
                wall_ms, p50, p99, p999);
    // comparisons stays 0: latency records are reported, never gated.
    RecordBench(BenchRecord{phase, requests, 0, 0, wall_ms, 0, 0});
    RecordBench(BenchRecord{phase + "_p50_us", requests, 0, 0, p50, 0, 0});
    RecordBench(BenchRecord{phase + "_p99_us", requests, 0, 0, p99, 0, 0});
    RecordBench(BenchRecord{phase + "_p999_us", requests, 0, 0, p999, 0, 0});
  }
};

/// The request mix: a rotation of cache-friendly repeats (the hot-query
/// path a dashboard hammers) and parameter-varying queries (guaranteed
/// misses), across every paginated endpoint.
std::string TargetFor(uint64_t i, uint64_t arrivals) {
  switch (i % 6) {
    case 0:
      return "/topk?k=10";  // repeats: cache hit after the first
    case 1:
      return "/topk?k=" + std::to_string(2 + i % 17);  // varying: misses
    case 2:
      return "/facts_for_tuple?tuple=" + std::to_string(i % 97) + "&k=100";
    case 3:
      return "/facts_in_window?window=" +
             std::to_string((i * 13) % (arrivals / 2)) + ":" +
             std::to_string(arrivals / 2 + i % (arrivals / 2)) + "&k=50";
    case 4:
      return "/explain?record=" + std::to_string(i % 64);
    default:
      return "/topk?k=10&prominent_only=true";
  }
}

}  // namespace

int Main() {
  ScopedBenchJson json("serving_load");

  const int n = std::max(64, Scaled(1500));
  const uint64_t closed_requests =
      static_cast<uint64_t>(std::max(200, Scaled(4000)));
  const uint64_t open_requests = closed_requests / 2;

  std::printf("serving_load: n=%d closed=%llu open=%llu\n", n,
              static_cast<unsigned long long>(closed_requests),
              static_cast<unsigned long long>(open_requests));

  // Ingest an NBA stream, then freeze: the load phases measure the serving
  // plane, not discovery.
  Dataset data = MakeNbaData(n, 4, 4);
  Relation relation(data.schema());
  auto disc_or =
      DiscoveryEngine::CreateDiscoverer("STopDown", &relation, {});
  SITFACT_CHECK(disc_or.ok());
  DiscoveryEngine::Config config;
  config.tau = 2.0;
  DiscoveryEngine engine(&relation, std::move(disc_or).value(), config);
  FactService service(&relation);
  {
    WallTimer ingest;
    for (const Row& row : data.rows()) {
      service.OnArrival(engine.Append(row));
    }
    RecordBench(BenchRecord{"ingest", static_cast<uint64_t>(n), 4, 4,
                            ingest.ElapsedMillis(), 0, 0});
  }
  const uint64_t arrivals = service.Acquire().arrivals();

  net::FactServer::Options options;
  options.net.port = 0;
  net::FactServer server(&service, &relation, options);
  Status listening = server.Listen();
  SITFACT_CHECK_MSG(listening.ok(), listening.ToString().c_str());
  std::atomic<bool> stop{false};
  server.set_external_stop(&stop);
  std::thread serving([&server] { (void)server.Serve(); });

  {
    // Warm the path (connection setup, first-touch allocations, the hot
    // cache entries) before anything is measured.
    net::HttpClient warm("127.0.0.1", server.port());
    for (uint64_t i = 0; i < 64; ++i) {
      auto r = warm.Get(TargetFor(i, arrivals));
      SITFACT_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      SITFACT_CHECK(r.value().status == 200);
    }
  }

  // Closed loop: one client, next request issued the moment the previous
  // response lands. Latency = pure service time at concurrency 1.
  double closed_mean_us = 0;
  {
    net::HttpClient client("127.0.0.1", server.port());
    Latencies lat;
    lat.micros.reserve(closed_requests);
    WallTimer wall;
    for (uint64_t i = 0; i < closed_requests; ++i) {
      const std::string target = TargetFor(i, arrivals);
      const auto start = std::chrono::steady_clock::now();
      auto r = client.Get(target);
      const auto end = std::chrono::steady_clock::now();
      SITFACT_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      SITFACT_CHECK(r.value().status == 200);
      lat.micros.push_back(
          std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
              end - start)
              .count());
    }
    const double wall_ms = wall.ElapsedMillis();
    for (double us : lat.micros) closed_mean_us += us;
    closed_mean_us /= static_cast<double>(lat.micros.size());
    lat.Summarize("closed_loop", closed_requests, wall_ms);
  }

  // Open loop: arrivals scheduled on a fixed cadence at ~50% of the
  // closed-loop service rate; latency is measured from the SCHEDULED start,
  // so queueing delay (falling behind the cadence) is charged to the
  // request — the coordinated-omission-free number.
  {
    const double interval_us = std::max(closed_mean_us * 2.0, 10.0);
    net::HttpClient client("127.0.0.1", server.port());
    Latencies lat;
    lat.micros.reserve(open_requests);
    WallTimer wall;
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < open_requests; ++i) {
      const auto scheduled =
          t0 + std::chrono::microseconds(
                   static_cast<int64_t>(interval_us * static_cast<double>(i)));
      std::this_thread::sleep_until(scheduled);
      auto r = client.Get(TargetFor(i, arrivals));
      const auto end = std::chrono::steady_clock::now();
      SITFACT_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      SITFACT_CHECK(r.value().status == 200);
      lat.micros.push_back(
          std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
              end - scheduled)
              .count());
    }
    lat.Summarize("open_loop", open_requests, wall.ElapsedMillis());
  }

  stop = true;
  serving.join();

  const net::EpollServer::Stats& stats = server.net_stats();
  std::printf("server: %llu requests over %llu connections, %llu shed\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.shed));
  return 0;
}

}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  return sitfact::bench::Main();
}
