// Figure 9: per-tuple execution time on the weather dataset, varying n
// (d=5, m=7). The weather data's low-cardinality dimensions produce much
// larger contexts than the NBA data; the paper's qualitative findings — the
// same algorithm ordering as Fig. 8, with the bottom-up family's storage
// growing fastest (it exhausted their JVM heap first) — carry over.

#include <string>
#include <vector>

#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

void Run() {
  int n = Scaled(4000);
  Dataset data = MakeWeatherData(n, 5, 7);
  DiscoveryOptions options;
  options.max_bound_dims = 4;
  const std::vector<std::string> algorithms = {
      "C-CSC", "BottomUp", "TopDown", "SBottomUp", "STopDown"};
  // The paper terminated C-CSC early on this dataset (it exhausted the heap
  // "shortly after 0.2 million tuples" and its per-tuple cost explodes with
  // the huge weather contexts); we mirror that by replaying it on a prefix.
  Dataset ccsc_prefix(data.schema());
  for (size_t i = 0; i < data.rows().size() / 4; ++i) {
    ccsc_prefix.Add(data.rows()[i]);
  }
  std::vector<StreamResult> results;
  for (const auto& algo : algorithms) {
    const Dataset& stream = algo == "C-CSC" ? ccsc_prefix : data;
    results.push_back(ReplayStream(algo, stream, n / 8, options));
  }
  PrintSeriesTable(
      "# Fig. 9  Execution time per tuple (ms), Weather, d=5, m=7, dhat=4",
      "tuple_id", results, [](const Sample& s) { return s.per_tuple_ms; });
  PrintSeriesTable(
      "# Fig. 9 (companion)  Stored skyline tuples — the memory pressure "
      "that kills the bottom-up family first on this dataset",
      "tuple_id", results,
      [](const Sample& s) { return static_cast<double>(s.stored_tuples); });
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig09_weather_time");
  sitfact::bench::Run();
  return 0;
}
