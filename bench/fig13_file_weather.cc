// Figure 13: per-tuple execution time of FSBottomUp and FSTopDown on the
// weather dataset, varying n (d=5, m=7). Same expected shape as Fig. 12(a),
// amplified: weather contexts are bigger, so FSBottomUp's bucket files are
// both more numerous and larger.

#include <string>
#include <vector>

#include "harness.h"

namespace sitfact {
namespace bench {
namespace {

void Run() {
  int n = Scaled(48);
  Dataset data = MakeWeatherData(n, 5, 7);
  DiscoveryOptions options;
  options.max_bound_dims = 4;
  const std::vector<std::string> algorithms = {"FSBottomUp", "FSTopDown"};
  std::vector<StreamResult> results;
  for (const auto& algo : algorithms) {
    results.push_back(ReplayStream(algo, data, n / 4, options));
  }
  PrintSeriesTable(
      "# Fig. 13  Execution time per tuple (ms), file-based, Weather, d=5, "
      "m=7",
      "tuple_id", results, [](const Sample& s) { return s.per_tuple_ms; });
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig13_file_weather");
  sitfact::bench::Run();
  return 0;
}
