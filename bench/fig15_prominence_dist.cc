// Figure 15: distribution of prominent facts over the NBA stream for τ in
// [10², 10⁴] (d=5, m=7, d̂=3, m̂=3),
//   (a) by the number of bound dimension attributes of the constraint,
//   (b) by the dimensionality of the measure subspace.
// The paper's qualitative shape: middle bound-counts (1-2 of 0..3) and
// middle subspace sizes (2 of 1..3) dominate — ⊤-level facts are too hard,
// very specific contexts too small to pass τ, single measures demand an
// outright maximum, and 3-measure skylines are too crowded to be rare.

#include <cstdio>
#include <map>
#include <vector>

#include "prominence_stream.h"

namespace sitfact {
namespace bench {
namespace {

void Run() {
  int n = Scaled(30000);
  auto records = RunProminenceStream(n);
  const std::vector<double> taus = {100, 316, 1000, 3162, 10000};

  std::printf(
      "\n# Fig. 15(a)  Prominent facts by bound(C), NBA, d=5, m=7, dhat=3, "
      "mhat=3\n");
  std::printf("%10s  %10s  %10s  %10s  %10s\n", "tau", "bound=0", "bound=1",
              "bound=2", "bound=3");
  for (double tau : taus) {
    uint64_t by_bound[4] = {0, 0, 0, 0};
    for (const auto& rec : records) {
      if (rec.max_prominence < tau) continue;
      for (const auto& [bound, msize] : rec.top_profile) {
        ++by_bound[bound];
      }
    }
    std::printf("%10.0f  %10llu  %10llu  %10llu  %10llu\n", tau,
                static_cast<unsigned long long>(by_bound[0]),
                static_cast<unsigned long long>(by_bound[1]),
                static_cast<unsigned long long>(by_bound[2]),
                static_cast<unsigned long long>(by_bound[3]));
  }

  std::printf(
      "\n# Fig. 15(b)  Prominent facts by |M|, NBA, d=5, m=7, dhat=3, "
      "mhat=3\n");
  std::printf("%10s  %10s  %10s  %10s\n", "tau", "|M|=1", "|M|=2", "|M|=3");
  for (double tau : taus) {
    uint64_t by_size[4] = {0, 0, 0, 0};
    for (const auto& rec : records) {
      if (rec.max_prominence < tau) continue;
      for (const auto& [bound, msize] : rec.top_profile) {
        ++by_size[msize];
      }
    }
    std::printf("%10.0f  %10llu  %10llu  %10llu\n", tau,
                static_cast<unsigned long long>(by_size[1]),
                static_cast<unsigned long long>(by_size[2]),
                static_cast<unsigned long long>(by_size[3]));
  }
}

}  // namespace
}  // namespace bench
}  // namespace sitfact

int main(int argc, char** argv) {
  sitfact::bench::InitBenchOutput(&argc, argv);
  sitfact::bench::ScopedBenchJson json("fig15_prominence_dist");
  sitfact::bench::Run();
  return 0;
}
